"""Greedy deletion baseline.

Denial-constraint-style repair treats every rule pattern purely as a
forbidden configuration and restores consistency by deleting something from
each violating match — it never adds facts and never merges entities.  This
baseline applies exactly that policy to the GRR patterns:

* for conflict and redundancy violations it deletes one matched edge
  (an edge bound to an edge variable if the pattern has one, otherwise the
  last pattern edge's witness);
* incompleteness violations cannot be repaired by deletion of the *missing*
  part (it is not there), so — in true denial-constraint spirit — it deletes
  an evidence edge instead, which silences the violation at the cost of
  destroying correct data.

The result is a method that does reach a violation-free graph but with poor
precision (it deletes good facts) and poor recall on incompleteness and
entity-duplication errors — the qualitative behaviour experiment E1 contrasts
with GRR repair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.detect_only import BaselineReport
from repro.graph.property_graph import PropertyGraph
from repro.matching.matcher import Matcher, MatcherConfig
from repro.repair.detector import ViolationDetector
from repro.rules.grr import RuleSet


@dataclass
class GreedyConfig:
    max_rounds: int = 50
    max_deletions: int | None = None


class GreedyDeleteBaseline:
    """Repairs every violation by deleting one involved edge."""

    name = "greedy-delete"

    def __init__(self, config: GreedyConfig | None = None) -> None:
        self.config = config or GreedyConfig()

    def edge_to_delete(self, graph: PropertyGraph, violation) -> str | None:
        """Pick the edge this baseline deletes for one violation (public:
        also used by the session's greedy backend for single-violation
        ``apply``)."""
        for edge_id in sorted(violation.match.edge_bindings.values()):
            if graph.has_edge(edge_id):
                return edge_id
        # No edge variable: fall back to a witness of the last pattern edge.
        pattern = violation.rule.pattern
        for edge in reversed(pattern.edges):
            source = violation.match.node_bindings.get(edge.source)
            target = violation.match.node_bindings.get(edge.target)
            if source is None or target is None:
                continue
            if not (graph.has_node(source) and graph.has_node(target)):
                continue
            witnesses = graph.edges_between(source, target, edge.label)
            if witnesses:
                return witnesses[0].id
        return None

    def repair_in_place(self, graph: PropertyGraph, rules: RuleSet,
                        events=None) -> BaselineReport:
        """Repair ``graph`` in place by greedy deletion.

        This is the core loop shared by the copying :meth:`repair` entry point
        and the ``"greedy"`` backend of :class:`~repro.api.RepairSession`.
        Optional ``events`` hooks (``on_violation`` per detected violation,
        ``on_repair_applied`` per deletion) stream progress.
        """
        started = time.perf_counter()
        deletions = 0
        violations_seen = 0
        # 0 when the loop terminated on an empty detection (violation-free
        # graph proven); None when it ended on budget / lack of progress
        remaining: int | None = None
        on_violation = getattr(events, "on_violation", None)
        on_repair_applied = getattr(events, "on_repair_applied", None)
        streamed_keys: set[tuple] = set()

        for _round in range(self.config.max_rounds):
            matcher = Matcher(graph, MatcherConfig.optimized())
            detection = ViolationDetector(graph, rules, matcher=matcher).detect()
            matcher.close()
            if not detection.violations:
                remaining = 0
                break
            violations_seen += len(detection.violations)
            progressed = False
            for violation in detection.violations:
                # stream each violation identity once, even when a skipped
                # violation is re-detected next round (same contract as the
                # fast and naive backends)
                if on_violation is not None and \
                        violation.key() not in streamed_keys:
                    streamed_keys.add(violation.key())
                    on_violation(violation)
                if self.config.max_deletions is not None and \
                        deletions >= self.config.max_deletions:
                    break
                if not violation.match.is_valid(graph):
                    continue
                edge_id = self.edge_to_delete(graph, violation)
                if edge_id is None:
                    continue
                graph.remove_edge(edge_id)
                deletions += 1
                progressed = True
                if on_repair_applied is not None:
                    on_repair_applied(violation, None)
            if not progressed:
                break
            if self.config.max_deletions is not None and \
                    deletions >= self.config.max_deletions:
                break

        return BaselineReport(
            method=self.name,
            elapsed_seconds=time.perf_counter() - started,
            violations_detected=violations_seen,
            changes_applied=deletions,
            details={"deleted_edges": deletions,
                     "remaining_violations": remaining},
        )

    def repair(self, graph: PropertyGraph,
               rules: RuleSet) -> tuple[PropertyGraph, BaselineReport]:
        """Repair a copy of ``graph`` by greedy deletion."""
        repaired = graph.copy(name=f"{graph.name}-greedy-repaired")
        report = self.repair_in_place(repaired, rules)
        return repaired, report
