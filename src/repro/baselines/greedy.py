"""Greedy deletion baseline.

Denial-constraint-style repair treats every rule pattern purely as a
forbidden configuration and restores consistency by deleting something from
each violating match — it never adds facts and never merges entities.  This
baseline applies exactly that policy to the GRR patterns:

* for conflict and redundancy violations it deletes one matched edge
  (an edge bound to an edge variable if the pattern has one, otherwise the
  last pattern edge's witness);
* incompleteness violations cannot be repaired by deletion of the *missing*
  part (it is not there), so — in true denial-constraint spirit — it deletes
  an evidence edge instead, which silences the violation at the cost of
  destroying correct data.

The result is a method that does reach a violation-free graph but with poor
precision (it deletes good facts) and poor recall on incompleteness and
entity-duplication errors — the qualitative behaviour experiment E1 contrasts
with GRR repair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.detect_only import BaselineReport
from repro.graph.property_graph import PropertyGraph
from repro.matching.matcher import Matcher, MatcherConfig
from repro.repair.detector import ViolationDetector
from repro.rules.grr import RuleSet


@dataclass
class GreedyConfig:
    max_rounds: int = 50
    max_deletions: int | None = None


class GreedyDeleteBaseline:
    """Repairs every violation by deleting one involved edge."""

    name = "greedy-delete"

    def __init__(self, config: GreedyConfig | None = None) -> None:
        self.config = config or GreedyConfig()

    def _edge_to_delete(self, graph: PropertyGraph, violation) -> str | None:
        """Pick the edge this baseline deletes for one violation."""
        for edge_id in sorted(violation.match.edge_bindings.values()):
            if graph.has_edge(edge_id):
                return edge_id
        # No edge variable: fall back to a witness of the last pattern edge.
        pattern = violation.rule.pattern
        for edge in reversed(pattern.edges):
            source = violation.match.node_bindings.get(edge.source)
            target = violation.match.node_bindings.get(edge.target)
            if source is None or target is None:
                continue
            if not (graph.has_node(source) and graph.has_node(target)):
                continue
            witnesses = graph.edges_between(source, target, edge.label)
            if witnesses:
                return witnesses[0].id
        return None

    def repair(self, graph: PropertyGraph,
               rules: RuleSet) -> tuple[PropertyGraph, BaselineReport]:
        """Repair a copy of ``graph`` by greedy deletion."""
        started = time.perf_counter()
        repaired = graph.copy(name=f"{graph.name}-greedy-repaired")
        deletions = 0
        violations_seen = 0

        for _round in range(self.config.max_rounds):
            matcher = Matcher(repaired, MatcherConfig.optimized())
            detection = ViolationDetector(repaired, rules, matcher=matcher).detect()
            matcher.close()
            if not detection.violations:
                break
            violations_seen += len(detection.violations)
            progressed = False
            for violation in detection.violations:
                if self.config.max_deletions is not None and \
                        deletions >= self.config.max_deletions:
                    break
                if not violation.match.is_valid(repaired):
                    continue
                edge_id = self._edge_to_delete(repaired, violation)
                if edge_id is None:
                    continue
                repaired.remove_edge(edge_id)
                deletions += 1
                progressed = True
            if not progressed:
                break
            if self.config.max_deletions is not None and \
                    deletions >= self.config.max_deletions:
                break

        report = BaselineReport(
            method=self.name,
            elapsed_seconds=time.perf_counter() - started,
            violations_detected=violations_seen,
            changes_applied=deletions,
            details={"deleted_edges": deletions},
        )
        return repaired, report
