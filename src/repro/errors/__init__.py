"""Error injection and ground-truth tracking (system S6 in DESIGN.md)."""

from repro.errors.ground_truth import Fact, GroundTruth, InjectedError, merge_ground_truths
from repro.errors.injector import (
    INJECTED_CONFIDENCE,
    ErrorInjector,
    ErrorProfile,
    InjectionConfig,
    inject_errors,
)

__all__ = [
    "Fact",
    "GroundTruth",
    "InjectedError",
    "merge_ground_truths",
    "ErrorProfile",
    "ErrorInjector",
    "InjectionConfig",
    "inject_errors",
    "INJECTED_CONFIDENCE",
]
