"""Ground truth for injected errors.

The evaluation methodology (standard for data-cleaning papers when manual
annotations are unavailable) is: start from a *clean* graph, corrupt it with
known errors, repair the corrupted graph, and score the repairs against the
record of what was corrupted.  This module defines the record format.

Facts are described at the *semantic* level (entity keys rather than internal
node ids — see :mod:`repro.metrics.quality`), so that repairs which express
the same correction with different element ids (e.g. merging the duplicate
into the original versus the original into the duplicate) score identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.rules.semantics import Semantics

# A fact is a hashable tuple, one of:
#   ("node", entity_key, label)
#   ("prop", entity_key, property_key, value)
#   ("edge", source_key, edge_label, target_key)
Fact = tuple


@dataclass
class InjectedError:
    """One deliberately introduced error.

    ``added_facts`` are facts present in the dirty graph but not the clean one
    (a correct repair removes them); ``removed_facts`` are facts the clean
    graph had but the dirty one lacks (a correct repair restores them).
    """

    kind: Semantics
    description: str
    added_facts: tuple[Fact, ...] = ()
    removed_facts: tuple[Fact, ...] = ()
    details: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.added_facts) + len(self.removed_facts)


@dataclass
class GroundTruth:
    """The full record of an injection run."""

    errors: list[InjectedError] = field(default_factory=list)

    def record(self, error: InjectedError) -> None:
        self.errors.append(error)

    def __len__(self) -> int:
        return len(self.errors)

    def __iter__(self):
        return iter(self.errors)

    def by_kind(self, kind: Semantics) -> list[InjectedError]:
        return [error for error in self.errors if error.kind is kind]

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for error in self.errors:
            counts[error.kind.value] = counts.get(error.kind.value, 0) + 1
        return counts

    def all_added_facts(self) -> list[Fact]:
        facts: list[Fact] = []
        for error in self.errors:
            facts.extend(error.added_facts)
        return facts

    def all_removed_facts(self) -> list[Fact]:
        facts: list[Fact] = []
        for error in self.errors:
            facts.extend(error.removed_facts)
        return facts

    def describe(self) -> str:
        lines = [f"GroundTruth: {len(self.errors)} injected errors "
                 f"({self.counts_by_kind()})"]
        for error in self.errors[:15]:
            lines.append(f"  [{error.kind.value}] {error.description}")
        if len(self.errors) > 15:
            lines.append(f"  ... and {len(self.errors) - 15} more")
        return "\n".join(lines)


def merge_ground_truths(parts: Iterable[GroundTruth]) -> GroundTruth:
    """Concatenate several injection records (e.g. per-error-class passes)."""
    merged = GroundTruth()
    for part in parts:
        merged.errors.extend(part.errors)
    return merged
