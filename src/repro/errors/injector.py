"""Error injection: corrupt a clean graph while recording the ground truth.

The injector produces the evaluation workloads (experiments E1, E4, E8): it
takes a clean domain graph and an :class:`ErrorProfile` describing where each
class of error can plausibly occur in that domain, and introduces

* **incompleteness** errors by deleting edges whose labels the domain's rules
  can re-derive (e.g. dropping a ``nationality`` edge that follows from
  ``bornIn`` + ``inCountry``);
* **conflict** errors by adding a second, contradictory edge for a functional
  predicate (a second birthplace, a second release year), a wrong-target edge,
  or a forbidden self-loop — injected edges carry a lower ``confidence`` than
  clean edges, modelling the less-reliable source such facts typically come
  from;
* **redundancy** errors by duplicating an entity node (copying its identifying
  properties and its hub edge) or by duplicating an existing edge.

Every injection is recorded as an :class:`~repro.errors.ground_truth.InjectedError`
holding the exact fact-level delta, so precision/recall of any repair method
can be computed afterwards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.graph.property_graph import PropertyGraph
from repro.errors.ground_truth import GroundTruth, InjectedError
from repro.metrics.facts import edge_fact, entity_key, node_fact, property_facts
from repro.rules.semantics import Semantics
from repro.utils.rng import ensure_rng

INJECTED_CONFIDENCE = 0.5


@dataclass(frozen=True)
class ErrorProfile:
    """Where each error class can be injected in a domain.

    Attributes
    ----------
    removable_edge_labels:
        Edge labels whose deletion creates a repairable incompleteness error
        (the domain's rules can re-derive them).
    functional_edge_labels:
        ``(edge label, target node label)`` pairs treated as functional from
        the source: injecting a second such edge creates a conflict.
    inverse_functional_edge_labels:
        ``(edge label, source node label)`` pairs functional towards the
        target (e.g. ``capitalOf``): injecting a second incoming edge creates
        a conflict.
    self_loop_forbidden_labels:
        Edge labels for which a self-loop is contradictory (e.g. ``follows``).
    duplicatable_node_labels:
        ``(node label, hub edge label)`` pairs: duplicating such a node and
        copying its hub edge creates a redundancy error the domain's
        merge rule can detect.
    duplicatable_edge_labels:
        Edge labels whose exact duplication creates a redundancy error.
    removable_edge_filter:
        Optional predicate ``(graph, edge) -> bool`` restricting incompleteness
        injection to edges the domain's rules can actually re-derive (e.g.
        only ``follows`` edges whose follower likes a post of the followee).
    key_properties:
        Identifying property per label (defaults to the global table).
    """

    removable_edge_labels: tuple[str, ...] = ()
    functional_edge_labels: tuple[tuple[str, str], ...] = ()
    inverse_functional_edge_labels: tuple[tuple[str, str], ...] = ()
    self_loop_forbidden_labels: tuple[str, ...] = ()
    duplicatable_node_labels: tuple[tuple[str, str], ...] = ()
    duplicatable_edge_labels: tuple[str, ...] = ()
    removable_edge_filter: Callable[[PropertyGraph, object], bool] | None = None
    key_properties: dict[str, str] | None = None


@dataclass
class InjectionConfig:
    """How many errors to inject.

    ``error_rate`` is interpreted relative to the number of edges in the clean
    graph; ``mix`` gives the relative share of each error class.
    """

    error_rate: float = 0.05
    mix: dict[str, float] = field(default_factory=lambda: {
        "incompleteness": 1.0, "conflict": 1.0, "redundancy": 1.0})
    seed: int | random.Random | None = 0

    def counts_for(self, num_edges: int) -> dict[str, int]:
        total_errors = max(1, int(round(self.error_rate * num_edges)))
        weight_sum = sum(self.mix.values()) or 1.0
        counts = {}
        for kind, weight in self.mix.items():
            counts[kind] = int(round(total_errors * weight / weight_sum))
        return counts


class ErrorInjector:
    """Injects errors into a copy of a clean graph."""

    def __init__(self, profile: ErrorProfile, config: InjectionConfig | None = None) -> None:
        self.profile = profile
        self.config = config or InjectionConfig()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def corrupt(self, clean: PropertyGraph,
                in_place: bool = False) -> tuple[PropertyGraph, GroundTruth]:
        """Return ``(dirty graph, ground truth)``.

        With ``in_place=False`` (default) the clean graph is copied first.
        """
        graph = clean if in_place else clean.copy(name=f"{clean.name}-dirty")
        rng = ensure_rng(self.config.seed)
        truth = GroundTruth()
        counts = self.config.counts_for(graph.num_edges)

        injectors = {
            "incompleteness": self._inject_incompleteness,
            "conflict": self._inject_conflict,
            "redundancy": self._inject_redundancy,
        }
        for kind, count in counts.items():
            injector = injectors.get(kind)
            if injector is None:
                raise ValueError(f"unknown error kind {kind!r}")
            for _ in range(count):
                error = injector(graph, rng)
                if error is not None:
                    truth.record(error)
        return graph, truth

    # ------------------------------------------------------------------
    # incompleteness
    # ------------------------------------------------------------------

    def _inject_incompleteness(self, graph: PropertyGraph,
                               rng: random.Random) -> InjectedError | None:
        candidates = []
        for label in self.profile.removable_edge_labels:
            candidates.extend(graph.edges_with_label(label))
        if self.profile.removable_edge_filter is not None:
            candidates = [edge for edge in candidates
                          if self.profile.removable_edge_filter(graph, edge)]
        if not candidates:
            return None
        edge = rng.choice(candidates)
        fact = edge_fact(graph, edge, self.profile.key_properties)
        graph.remove_edge(edge.id)
        return InjectedError(
            kind=Semantics.INCOMPLETENESS,
            description=f"removed {edge.label} edge {edge.source}->{edge.target}",
            removed_facts=(fact,),
            details={"edge_label": edge.label})

    # ------------------------------------------------------------------
    # conflicts
    # ------------------------------------------------------------------

    def _inject_conflict(self, graph: PropertyGraph,
                         rng: random.Random) -> InjectedError | None:
        choices = []
        if self.profile.functional_edge_labels:
            choices.append("functional")
        if self.profile.inverse_functional_edge_labels:
            choices.append("inverse")
        if self.profile.self_loop_forbidden_labels:
            choices.append("self-loop")
        if not choices:
            return None
        strategy = rng.choice(choices)
        if strategy == "functional":
            return self._conflict_functional(graph, rng)
        if strategy == "inverse":
            return self._conflict_inverse_functional(graph, rng)
        return self._conflict_self_loop(graph, rng)

    def _conflict_functional(self, graph: PropertyGraph,
                             rng: random.Random) -> InjectedError | None:
        label, target_label = rng.choice(list(self.profile.functional_edge_labels))
        existing = graph.edges_with_label(label)
        if not existing:
            return None
        edge = rng.choice(existing)
        targets = [node for node in graph.nodes_with_label(target_label)
                   if node.id != edge.target]
        if not targets:
            return None
        wrong_target = rng.choice(targets)
        new_edge = graph.add_edge(edge.source, wrong_target.id, label,
                                  {"confidence": INJECTED_CONFIDENCE})
        return InjectedError(
            kind=Semantics.CONFLICT,
            description=f"added conflicting {label} edge {edge.source}->{wrong_target.id}",
            added_facts=(edge_fact(graph, new_edge, self.profile.key_properties),),
            details={"edge_label": label, "strategy": "functional"})

    def _conflict_inverse_functional(self, graph: PropertyGraph,
                                     rng: random.Random) -> InjectedError | None:
        label, source_label = rng.choice(list(self.profile.inverse_functional_edge_labels))
        existing = graph.edges_with_label(label)
        if not existing:
            return None
        edge = rng.choice(existing)
        sources = [node for node in graph.nodes_with_label(source_label)
                   if node.id != edge.source]
        if not sources:
            return None
        wrong_source = rng.choice(sources)
        new_edge = graph.add_edge(wrong_source.id, edge.target, label,
                                  {"confidence": INJECTED_CONFIDENCE})
        return InjectedError(
            kind=Semantics.CONFLICT,
            description=f"added conflicting {label} edge {wrong_source.id}->{edge.target}",
            added_facts=(edge_fact(graph, new_edge, self.profile.key_properties),),
            details={"edge_label": label, "strategy": "inverse-functional"})

    def _conflict_self_loop(self, graph: PropertyGraph,
                            rng: random.Random) -> InjectedError | None:
        label = rng.choice(list(self.profile.self_loop_forbidden_labels))
        existing = graph.edges_with_label(label)
        if not existing:
            return None
        edge = rng.choice(existing)
        new_edge = graph.add_edge(edge.source, edge.source, label,
                                  {"confidence": INJECTED_CONFIDENCE})
        return InjectedError(
            kind=Semantics.CONFLICT,
            description=f"added forbidden self-loop {label} on {edge.source}",
            added_facts=(edge_fact(graph, new_edge, self.profile.key_properties),),
            details={"edge_label": label, "strategy": "self-loop"})

    # ------------------------------------------------------------------
    # redundancy
    # ------------------------------------------------------------------

    def _inject_redundancy(self, graph: PropertyGraph,
                           rng: random.Random) -> InjectedError | None:
        choices = []
        if self.profile.duplicatable_node_labels:
            choices.append("node")
        if self.profile.duplicatable_edge_labels:
            choices.append("edge")
        if not choices:
            return None
        if rng.choice(choices) == "node":
            return self._redundancy_duplicate_node(graph, rng)
        return self._redundancy_duplicate_edge(graph, rng)

    def _redundancy_duplicate_node(self, graph: PropertyGraph,
                                   rng: random.Random) -> InjectedError | None:
        node_label, hub_edge_label = rng.choice(list(self.profile.duplicatable_node_labels))
        candidates = [node for node in graph.nodes_with_label(node_label)
                      if graph.out_edges_with_label(node.id, hub_edge_label)]
        if not candidates:
            return None
        original = rng.choice(candidates)
        duplicate = graph.add_node(original.label, dict(original.properties))
        added_facts = [node_fact(duplicate, self.profile.key_properties)]
        added_facts.extend(property_facts(duplicate, self.profile.key_properties))
        # Copy the hub edge (required by the dedup rule's pattern) plus a random
        # subset of the remaining outgoing edges, as partial duplicates occur in
        # practice.
        hub_edges = graph.out_edges_with_label(original.id, hub_edge_label)
        copied_edges = [rng.choice(hub_edges)]
        other_edges = [edge for edge in graph.out_edges(original.id)
                       if edge.id != copied_edges[0].id]
        for edge in other_edges:
            if rng.random() < 0.5:
                copied_edges.append(edge)
        for edge in copied_edges:
            new_edge = graph.add_edge(duplicate.id, edge.target, edge.label,
                                      dict(edge.properties))
            added_facts.append(edge_fact(graph, new_edge, self.profile.key_properties))
        return InjectedError(
            kind=Semantics.REDUNDANCY,
            description=f"duplicated {node_label} node {original.id} as {duplicate.id}",
            added_facts=tuple(added_facts),
            details={"original": original.id, "duplicate": duplicate.id,
                     "strategy": "duplicate-node"})

    def _redundancy_duplicate_edge(self, graph: PropertyGraph,
                                   rng: random.Random) -> InjectedError | None:
        label = rng.choice(list(self.profile.duplicatable_edge_labels))
        existing = graph.edges_with_label(label)
        if not existing:
            return None
        edge = rng.choice(existing)
        new_edge = graph.add_edge(edge.source, edge.target, edge.label,
                                  dict(edge.properties))
        return InjectedError(
            kind=Semantics.REDUNDANCY,
            description=f"duplicated {label} edge {edge.source}->{edge.target}",
            added_facts=(edge_fact(graph, new_edge, self.profile.key_properties),),
            details={"edge_label": label, "strategy": "duplicate-edge"})


def inject_errors(clean: PropertyGraph, profile: ErrorProfile,
                  error_rate: float = 0.05,
                  mix: dict[str, float] | None = None,
                  seed: int | random.Random | None = 0) -> tuple[PropertyGraph, GroundTruth]:
    """One-call corruption helper used by the experiments and examples."""
    config = InjectionConfig(error_rate=error_rate,
                             mix=mix or {"incompleteness": 1.0, "conflict": 1.0,
                                         "redundancy": 1.0},
                             seed=seed)
    return ErrorInjector(profile, config).corrupt(clean)
