"""Unit tests for the candidate index, the VF2 matcher, and the matcher facade."""

from __future__ import annotations

import pytest

from repro.exceptions import MatchingError
from repro.graph import PropertyGraph
from repro.matching import (
    CandidateIndex,
    Matcher,
    MatcherConfig,
    Pattern,
    PatternEdge,
    PatternNode,
    VF2Matcher,
    different_value,
    naive_candidates,
    pattern_requirements,
    same_value,
)


@pytest.fixture
def born_in_pattern() -> Pattern:
    return Pattern(nodes=[PatternNode("p", "Person"), PatternNode("c", "City")],
                   edges=[PatternEdge("p", "c", "bornIn")], name="born-in")


class TestCandidateIndex:
    def test_label_buckets(self, tiny_kg):
        index = CandidateIndex(tiny_kg)
        assert index.label_count("Person") == 4
        assert index.label_count("City") == 2
        assert index.label_count(None) == tiny_kg.num_nodes
        assert index.nodes_with_label("Ghost") == set()

    def test_signature_pruning(self, tiny_kg, born_in_pattern):
        index = CandidateIndex(tiny_kg)
        candidates = index.candidates(born_in_pattern, "p")
        # every person has a bornIn edge, so all four qualify
        assert len(candidates) == 4
        requirements = pattern_requirements(born_in_pattern, "p")
        assert requirements[0]["bornIn"] == 1

    def test_index_agrees_with_naive_candidates(self, tiny_kg, born_in_pattern):
        index = CandidateIndex(tiny_kg)
        for variable in born_in_pattern.variables:
            assert sorted(index.candidates(born_in_pattern, variable)) == \
                sorted(naive_candidates(tiny_kg, born_in_pattern, variable))

    def test_incremental_maintenance_matches_rebuild(self, tiny_kg, born_in_pattern):
        graph = tiny_kg.copy()
        index = CandidateIndex(graph)
        index.attach()
        # a batch of mutations of every kind
        new_person = graph.add_node("Person", {"name": "Zed"})
        city = graph.nodes_with_label("City")[0]
        edge = graph.add_edge(new_person.id, city.id, "bornIn")
        graph.relabel_node(new_person.id, "Author")
        graph.relabel_node(new_person.id, "Person")
        graph.update_node(new_person.id, {"name": "Zed!"})
        graph.remove_edge(edge.id)
        graph.add_edge(new_person.id, city.id, "bornIn")
        person_to_remove = graph.nodes_with_label("Person")[0]
        graph.remove_node(person_to_remove.id)
        ada_ids = [node.id for node in graph.nodes_with_label("Person")
                   if node.get("name") == "Ada"]
        if len(ada_ids) >= 2:
            graph.merge_nodes(ada_ids[0], ada_ids[1])
        index.detach()

        fresh = CandidateIndex(graph)
        for variable in born_in_pattern.variables:
            assert sorted(index.candidates(born_in_pattern, variable)) == \
                sorted(fresh.candidates(born_in_pattern, variable))


class TestVF2Matcher:
    def test_all_matches_found(self, tiny_kg, born_in_pattern):
        matcher = VF2Matcher(graph=tiny_kg)
        matches = matcher.find_matches(born_in_pattern)
        assert len(matches) == 4  # Ada, Ada2, Bob, Carol

    def test_matches_satisfy_the_oracle(self, tiny_kg, duplicate_person_pattern):
        matcher = VF2Matcher(graph=tiny_kg)
        matches = matcher.find_matches(duplicate_person_pattern)
        assert matches
        for match in matches:
            assert duplicate_person_pattern.check_match(tiny_kg, match.node_bindings)

    def test_limit_truncates(self, tiny_kg, born_in_pattern):
        matcher = VF2Matcher(graph=tiny_kg)
        assert len(matcher.find_matches(born_in_pattern, limit=2)) == 2
        assert matcher.count(born_in_pattern, limit=3) == 3

    def test_seeded_search_restricts_results(self, tiny_kg, born_in_pattern):
        bob = next(node.id for node in tiny_kg.nodes_with_label("Person")
                   if node.get("name") == "Bob")
        matcher = VF2Matcher(graph=tiny_kg)
        matches = matcher.find_matches(born_in_pattern, seed={"p": bob})
        assert len(matches) == 1
        assert matches[0].node_id("p") == bob

    def test_seed_violating_label_yields_nothing(self, tiny_kg, born_in_pattern):
        country = tiny_kg.nodes_with_label("Country")[0]
        matcher = VF2Matcher(graph=tiny_kg)
        assert matcher.find_matches(born_in_pattern, seed={"p": country.id}) == []

    def test_seed_with_unknown_variable_raises(self, tiny_kg, born_in_pattern):
        matcher = VF2Matcher(graph=tiny_kg)
        with pytest.raises(MatchingError):
            matcher.find_matches(born_in_pattern, seed={"zzz": "n0"})

    def test_edge_variables_bind_distinct_edges(self, tiny_kg):
        pattern = Pattern(
            nodes=[PatternNode("p", "Person"), PatternNode("c", "City")],
            edges=[PatternEdge("p", "c", "livesIn", variable="e1"),
                   PatternEdge("p", "c", "livesIn", variable="e2")],
            name="dup-lives-in")
        matcher = VF2Matcher(graph=tiny_kg)
        matches = matcher.find_matches(pattern)
        # Ada has two livesIn edges to Paris: two orderings of (e1, e2)
        assert len(matches) == 2
        for match in matches:
            assert match.edge_id("e1") != match.edge_id("e2")

    def test_self_loop_pattern(self):
        graph = PropertyGraph()
        user = graph.add_node("User")
        other = graph.add_node("User")
        graph.add_edge(user.id, user.id, "follows")
        graph.add_edge(user.id, other.id, "follows")
        pattern = Pattern(nodes=[PatternNode("u", "User")],
                          edges=[PatternEdge("u", "u", "follows", variable="e")],
                          name="self-follow")
        matches = VF2Matcher(graph=graph).find_matches(pattern)
        assert len(matches) == 1
        assert matches[0].node_id("u") == user.id

    def test_comparison_pruning_correctness(self, tiny_kg):
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[different_value("a", "name", "b")],
            name="different-names")
        matches = VF2Matcher(graph=tiny_kg).find_matches(pattern)
        # Bob/Carol in Paris in both orders; Ada/Ada2 excluded (same name)
        assert len(matches) == 2

    def test_stats_are_collected(self, tiny_kg, born_in_pattern):
        matcher = VF2Matcher(graph=tiny_kg)
        matcher.find_matches(born_in_pattern)
        assert matcher.stats.matches_found == 4
        assert matcher.stats.nodes_tried > 0


class TestMatcherConfigurations:
    @pytest.mark.parametrize("config", [
        MatcherConfig.naive(),
        MatcherConfig(use_candidate_index=True, use_decomposition=False),
        MatcherConfig(use_candidate_index=False, use_decomposition=True),
        MatcherConfig.optimized(),
    ], ids=["naive", "index-only", "decomposition-only", "optimized"])
    def test_all_configurations_agree(self, tiny_kg, duplicate_person_pattern, config):
        reference = Matcher(tiny_kg, MatcherConfig.naive())
        expected = {match.key() for match in reference.find_matches(duplicate_person_pattern)}
        matcher = Matcher(tiny_kg, config)
        actual = {match.key() for match in matcher.find_matches(duplicate_person_pattern)}
        assert actual == expected
        matcher.close()
        reference.close()

    def test_exists_extension_with_partial_bindings(self, tiny_kg):
        nationality = Pattern(nodes=[PatternNode("p", "Person"),
                                     PatternNode("k", "Country")],
                              edges=[PatternEdge("p", "k", "nationality")],
                              name="has-nationality")
        matcher = Matcher(tiny_kg)
        people: dict[str, str] = {}
        for node in tiny_kg.nodes_with_label("Person"):
            people.setdefault(node.get("name"), node.id)  # first Ada has a nationality
        assert matcher.exists_extension(nationality, {"p": people["Ada"]})
        assert not matcher.exists_extension(nationality, {"p": people["Carol"]})
        # bindings for variables the pattern does not declare are ignored
        assert matcher.exists_extension(nationality, {"p": people["Ada"], "other": "x"})
        matcher.close()

    def test_match_limit_from_config(self, tiny_kg, born_in_pattern):
        matcher = Matcher(tiny_kg, MatcherConfig(match_limit=1))
        assert len(matcher.find_matches(born_in_pattern)) == 1
        matcher.close()

    def test_context_manager_detaches_index(self, tiny_kg, born_in_pattern):
        with Matcher(tiny_kg, MatcherConfig.optimized()) as matcher:
            assert matcher.find_matches(born_in_pattern)
        # after close, further graph mutations must not break anything
        tiny_kg_copy = tiny_kg.copy()
        assert tiny_kg_copy.num_nodes == tiny_kg.num_nodes
