"""Session-vs-one-shot equivalence across backends and dataset generators.

The session API must not change *what* gets repaired, only *how* the repair
state is managed: for every backend (fast / naive / greedy) and every dataset
generator (kg / movies / social), opening a session over a workload and
repairing must produce exactly the graph and the headline counters of the
corresponding one-shot entry point.  The batched drain must agree with the
sequential drain while performing strictly fewer maintenance passes.
"""

from __future__ import annotations

import pytest

from repro.api import RepairConfig, RepairSession
from repro.baselines import GreedyDeleteBaseline
from repro.repair import FastRepairer, NaiveRepairer

WORKLOAD_FIXTURES = ("small_kg_workload", "small_movie_workload",
                     "small_social_workload")


def _session_repair(graph, rules, config):
    repaired = graph.copy(name=f"{graph.name}-session")
    with RepairSession(repaired, rules, config=config) as session:
        report = session.repair()
    return repaired, report


@pytest.fixture(params=WORKLOAD_FIXTURES)
def workload(request):
    return request.getfixturevalue(request.param)


class TestSessionMatchesOneShot:
    def test_fast_backend(self, workload):
        reference = workload.dirty.copy()
        ref_report = FastRepairer().repair(reference, workload.rules)

        repaired, report = _session_repair(workload.dirty, workload.rules,
                                           RepairConfig.fast())
        assert repaired.structurally_equal(reference)
        assert report.repairs_applied == ref_report.repairs_applied
        assert report.violations_detected == ref_report.violations_detected
        assert report.remaining_violations == ref_report.remaining_violations
        assert report.reached_fixpoint == ref_report.reached_fixpoint

    def test_naive_backend(self, workload):
        reference = workload.dirty.copy()
        ref_report = NaiveRepairer().repair(reference, workload.rules)

        repaired, report = _session_repair(workload.dirty, workload.rules,
                                           RepairConfig.naive())
        assert repaired.structurally_equal(reference)
        assert report.repairs_applied == ref_report.repairs_applied
        assert report.violations_detected == ref_report.violations_detected
        assert report.remaining_violations == ref_report.remaining_violations
        assert report.reached_fixpoint == ref_report.reached_fixpoint

    def test_greedy_backend(self, workload):
        reference, ref_report = GreedyDeleteBaseline().repair(workload.dirty,
                                                              workload.rules)

        repaired, report = _session_repair(workload.dirty, workload.rules,
                                           RepairConfig.baseline())
        assert repaired.structurally_equal(reference)
        assert report.repairs_applied == ref_report.changes_applied
        assert report.violations_detected == ref_report.violations_detected

    def test_cumulative_report_accumulates_timings(self, workload):
        """Non-cumulative backends absorb per-run reports; the timing
        breakdown must accumulate, not keep only the first run's timers."""
        repaired = workload.dirty.copy()
        with RepairSession(repaired, workload.rules,
                           config=RepairConfig.naive()) as session:
            first = session.repair()
            detection_after_first = first.timings.get("detection")
            second = session.repair()
        assert second.timings.get("detection") > detection_after_first

    def test_fast_and_naive_reach_the_same_fixpoint(self, workload):
        """Cross-backend sanity: both GRR algorithms agree on the outcome."""
        fast_graph, _ = _session_repair(workload.dirty, workload.rules,
                                        RepairConfig.fast())
        naive_graph, _ = _session_repair(workload.dirty, workload.rules,
                                         RepairConfig.naive())
        assert fast_graph.structurally_equal(naive_graph)


class TestBatchedDrainEquivalence:
    def test_batched_matches_sequential_and_saves_passes(self, workload):
        sequential, seq_report = _session_repair(workload.dirty, workload.rules,
                                                 RepairConfig.fast())
        batched, batch_report = _session_repair(workload.dirty, workload.rules,
                                                RepairConfig.fast().batched())

        # The repaired graphs agree exactly.  (repair *counts* may differ on
        # overlapping violations — a repair that sequential maintenance would
        # have obsoleted can still fire inside a batch before converging to
        # the same fixpoint; exact count equality on independent violations
        # is asserted in test_api_session.py.)
        assert batched.structurally_equal(sequential)
        assert batch_report.reached_fixpoint == seq_report.reached_fixpoint
        if seq_report.repairs_applied > 1:
            # batching N violations must need fewer incremental passes than
            # the one-pass-per-repair sequential drain (MatchingStats surfaces
            # the counter)
            assert batch_report.matching_stats.maintenance_passes < \
                seq_report.matching_stats.maintenance_passes
