"""Unit tests for graph serialisation (JSON, triples, edge lists)."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import SerializationError
from repro.graph import (
    PropertyGraph,
    dump_json,
    dumps_json,
    graph_from_dict,
    graph_to_dict,
    graph_to_triples,
    load_json,
    loads_json,
    read_edge_list,
    triples_to_graph,
    write_edge_list,
)


class TestJsonRoundTrip:
    def test_dict_round_trip_preserves_everything(self, tiny_kg):
        document = graph_to_dict(tiny_kg)
        back = graph_from_dict(document)
        assert back.structurally_equal(tiny_kg)
        assert back.name == tiny_kg.name

    def test_string_round_trip(self, tiny_kg):
        payload = dumps_json(tiny_kg)
        back = loads_json(payload)
        assert back.structurally_equal(tiny_kg)

    def test_file_round_trip(self, tiny_kg, tmp_path):
        path = tmp_path / "graph.json"
        dump_json(tiny_kg, path)
        back = load_json(path)
        assert back.structurally_equal(tiny_kg)

    def test_invalid_payloads_raise(self):
        with pytest.raises(SerializationError):
            loads_json("not json at all {")
        with pytest.raises(SerializationError):
            graph_from_dict({"format": "something-else"})
        with pytest.raises(SerializationError):
            graph_from_dict({"format": "repro-property-graph",
                             "nodes": [{"label": "Person"}]})  # missing id

    def test_empty_graph_round_trip(self):
        graph = PropertyGraph(name="empty")
        assert loads_json(dumps_json(graph)).num_nodes == 0


class TestTriples:
    def test_graph_to_triples_covers_types_properties_and_edges(self, tiny_kg):
        triples = list(graph_to_triples(tiny_kg))
        type_triples = [t for t in triples if t.predicate == "rdf:type"]
        literal_triples = [t for t in triples if t.object_is_literal and t.predicate != "rdf:type"]
        edge_triples = [t for t in triples if not t.object_is_literal]
        assert len(type_triples) == tiny_kg.num_nodes
        assert len(edge_triples) == tiny_kg.num_edges
        assert any(t.predicate == "name" for t in literal_triples)

    def test_triples_round_trip_preserves_structure(self, tiny_kg):
        back = triples_to_graph(graph_to_triples(tiny_kg))
        assert back.num_nodes == tiny_kg.num_nodes
        assert back.num_edges == tiny_kg.num_edges
        assert back.node_labels() == tiny_kg.node_labels()
        # property triples come back as node properties (confidence lives on edges,
        # which the triple view drops)
        names = {node.get("name") for node in back.nodes_with_label("Person")}
        assert "Ada" in names

    def test_object_only_nodes_get_default_label(self):
        from repro.graph.io import Triple

        graph = triples_to_graph([Triple("a", "knows", "b")])
        assert graph.node("b").label == "Node"


class TestEdgeList:
    def test_edge_list_round_trip(self, tiny_kg):
        buffer = io.StringIO()
        write_edge_list(tiny_kg, buffer)
        buffer.seek(0)
        back = read_edge_list(buffer)
        assert back.num_nodes == tiny_kg.num_nodes
        assert back.num_edges == tiny_kg.num_edges

    def test_malformed_lines_raise(self):
        with pytest.raises(SerializationError):
            read_edge_list(io.StringIO("a\tb\n"))

    def test_unknown_endpoints_get_created(self):
        back = read_edge_list(io.StringIO("x\tknows\ty\n"))
        assert back.has_node("x") and back.has_node("y")
        assert back.num_edges == 1
