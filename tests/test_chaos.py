"""Chaos suite: scripted faults drive the self-healing machinery.

Every test here follows the same contract the resilience layer promises
(docs/RESILIENCE.md): a fault — a SIGKILL'd worker, a hung reply, a full
disk mid-WAL-append — may cost a recovery pass, but never correctness.
The repaired graph must stay element-for-element equal to the sequential
backend's result, acknowledged commits must stay durable, and no orphan
process may outlive a failure.

Faults are injected with :mod:`repro.testing.faults` — deterministic,
declaration-ordered scripts — so every scenario is reproducible, including
the real-process SIGKILL-mid-repair smoke test that CI runs on every push.
"""

from __future__ import annotations

import multiprocessing
import pickle
import random
import threading
import time

import pytest

from repro.api import RepairConfig, RepairSession
from repro.durability import DurabilityConfig, TenantDurability, WriteAheadLog, recover
from repro.exceptions import AdmissionError, DurabilityError, IngestError
from repro.graph.property_graph import PropertyGraph
from repro.ingest import IngestConfig, IngestFront
from repro.parallel.breaker import BREAKER_STATE_VALUES, CircuitBreaker
from repro.parallel.pool import WorkerPool
from repro.rules.grr import RuleSet
from repro.service import GraphRepairService
from repro.testing import Fault, FaultPlan, InjectedFault
from repro.testing import faults as faults_module


def _warm_config(workers: int = 2, **overrides) -> RepairConfig:
    return RepairConfig.sharded(workers=workers, warm=True,
                                parallel_inline=True,
                                min_partition_nodes=1, **overrides)


def _corrupt(graph, seed: int) -> None:
    """Deterministic violation-producing edits (deletions + duplicates)."""
    rng = random.Random(seed)
    edge_ids = graph.edge_ids()
    for edge_id in rng.sample(edge_ids, min(6, len(edge_ids))):
        if graph.has_edge(edge_id):
            graph.remove_edge(edge_id)
    edge_ids = graph.edge_ids()
    for edge_id in rng.sample(edge_ids, min(4, len(edge_ids))):
        edge = graph.edge(edge_id)
        graph.add_edge(edge.source, edge.target, edge.label,
                       dict(edge.properties))


def _sequential_reference(workload, name: str, seeds=()) -> PropertyGraph:
    """The ground truth: the same repair rounds on the sequential backend."""
    reference = workload.dirty.copy(name=name)
    with RepairSession(reference, workload.rules,
                       config=RepairConfig.fast()) as session:
        session.repair()
        for seed in seeds:
            session.apply(lambda g: _corrupt(g, seed))
            session.repair()
    return reference


def _no_pool_children() -> bool:
    """True when no repro pool worker process is left alive."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        alive = [p for p in multiprocessing.active_children()
                 if p.name.startswith("repro-pool-worker")]
        if not alive:
            return True
        time.sleep(0.05)
    return False


def _touch(node_id, key, value):
    return lambda graph: graph.update_node(node_id, {key: value})


# ----------------------------------------------------------------------
# the fault plan itself
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_at_counts_matching_hits(self):
        plan = FaultPlan(faults=(Fault(site="s", kind="error", at=3),))
        assert plan.take("s") is None
        assert plan.take("s") is None
        fault = plan.take("s")
        assert fault is not None and fault.kind == "error"

    def test_filters_narrow_matching(self):
        plan = FaultPlan(faults=(
            Fault(site="worker.command", kind="error", command="repair",
                  worker=1),))
        # wrong command and wrong worker never advance the counter
        assert plan.take("worker.command", worker=1, command="bind") is None
        assert plan.take("worker.command", worker=0, command="repair") is None
        assert plan.take("wal.append") is None
        assert plan.take("worker.command", worker=1,
                         command="repair") is not None

    def test_none_filters_match_everything(self):
        plan = FaultPlan(faults=(Fault(site="worker.command", kind="error"),))
        assert plan.take("worker.command", worker=7, command="ship",
                         key="k") is not None

    def test_each_fault_fires_exactly_once(self):
        plan = FaultPlan(faults=(Fault(site="s", kind="error"),))
        assert plan.take("s") is not None
        assert not any(plan.take("s") for _ in range(5))
        assert plan.exhausted

    def test_declaration_order_wins_and_counters_are_shared_hits(self):
        first = Fault(site="s", kind="error")
        second = Fault(site="s", kind="hang")
        plan = FaultPlan(faults=(first, second))
        # both faults count the first hit; the earlier declaration fires
        assert plan.take("s") is first
        # the second fault already saw one matching hit, so it fires next
        assert plan.take("s") is second
        assert plan.exhausted

    def test_plan_pickles_with_independent_counters(self):
        plan = FaultPlan(faults=(Fault(site="s", kind="error", at=2),))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.take("s") is None
        assert clone.take("s") is not None
        # the original (the coordinator's copy) never saw those hits
        assert plan.take("s") is None
        assert not plan.exhausted

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(site="s", kind="explode")
        with pytest.raises(ValueError, match="at must be"):
            Fault(site="s", kind="error", at=0)
        with pytest.raises(ValueError, match="seconds must be"):
            Fault(site="s", kind="slow", seconds=-1.0)

    def test_perform_error_raises_injected_fault(self):
        with pytest.raises(InjectedFault):
            faults_module.perform(Fault(site="s", kind="error"))

    def test_perform_enospc_raises_oserror(self):
        import errno

        with pytest.raises(OSError) as excinfo:
            faults_module.perform(Fault(site="s", kind="enospc"))
        assert excinfo.value.errno == errno.ENOSPC


# ----------------------------------------------------------------------
# the circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **overrides):
        clock = [0.0]
        options = {"failure_threshold": 3, "reset_seconds": 30.0,
                   "clock": lambda: clock[0]}
        options.update(overrides)
        return CircuitBreaker(**options), clock

    def test_full_lifecycle(self):
        breaker, clock = self._breaker()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below the threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] += 30.0
        assert breaker.state == "half_open"
        assert breaker.allow()            # the probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker(failure_threshold=1)
        breaker.record_failure()
        clock[0] += 30.0
        assert breaker.allow()
        assert not breaker.allow()        # probe outstanding: refuse
        breaker.record_success()
        assert breaker.allow()            # closed again

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker, clock = self._breaker(failure_threshold=1)
        breaker.record_failure()
        clock[0] += 30.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] += 29.0
        assert not breaker.allow()        # cool-down restarted at the reopen
        clock[0] += 1.0
        assert breaker.allow()

    def test_snapshot_shape(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot == {"state": "closed", "consecutive_failures": 1,
                            "failure_threshold": 3, "reset_seconds": 30.0,
                            "transitions": 0}

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=-1.0)
        assert set(BREAKER_STATE_VALUES) == {"closed", "half_open", "open"}


# ----------------------------------------------------------------------
# inline supervision (simulated deaths, deterministic)
# ----------------------------------------------------------------------


class TestInlineChaos:
    def test_crash_mid_repair_heals_and_matches_sequential(
            self, small_kg_workload):
        plan = FaultPlan(faults=(
            Fault(site="worker.command", kind="crash", command="repair"),))
        graph = small_kg_workload.dirty.copy(name="inline-crash")
        with WorkerPool(workers=2, inline=True, fault_plan=plan) as pool:
            with RepairSession(graph, small_kg_workload.rules,
                               config=_warm_config(), pool=pool) as session:
                session.repair()
                fanout = session.backend.last_fanout
                assert not fanout.fallback
                assert pool.stats.worker_deaths == 1
                assert pool.stats.respawns == 1
                assert pool.stats.retries >= 1
                assert fanout.pool_respawns == 1
        reference = _sequential_reference(small_kg_workload, "inline-crash-ref")
        assert graph.structurally_equal(reference)

    def test_errored_repair_is_retried_once(self, small_kg_workload):
        plan = FaultPlan(faults=(
            Fault(site="worker.command", kind="error", command="repair"),))
        graph = small_kg_workload.dirty.copy(name="inline-error")
        with WorkerPool(workers=2, inline=True, fault_plan=plan) as pool:
            with RepairSession(graph, small_kg_workload.rules,
                               config=_warm_config(), pool=pool) as session:
                session.repair()
                assert not session.backend.last_fanout.fallback
                assert pool.stats.retries == 1
                assert pool.stats.respawns == 0   # an error is not a death
        reference = _sequential_reference(small_kg_workload, "inline-error-ref")
        assert graph.structurally_equal(reference)

    def test_persistent_errors_degrade_to_sequential(self, small_kg_workload):
        # enough scripted errors to defeat the first attempt AND its one
        # retry: the pool gives up, the backend falls back to the drain
        plan = FaultPlan(faults=tuple(
            Fault(site="worker.command", kind="error", command="repair")
            for _ in range(4)))
        graph = small_kg_workload.dirty.copy(name="inline-fallback")
        with WorkerPool(workers=2, inline=True, fault_plan=plan) as pool:
            with RepairSession(graph, small_kg_workload.rules,
                               config=_warm_config(), pool=pool) as session:
                report = session.repair()
                fanout = session.backend.last_fanout
                assert fanout.fallback
                assert fanout.fallback_reason == "pool-failure"
                assert pool.stats.fallback_repairs == 1
                assert pool.breaker.consecutive_failures == 1
                assert report.repairs_applied > 0
        reference = _sequential_reference(small_kg_workload,
                                          "inline-fallback-ref")
        assert graph.structurally_equal(reference)

    def test_breaker_opens_then_recovers_through_probe(self,
                                                       small_kg_workload):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=60.0,
                                 clock=lambda: clock[0])
        # exactly two errors: enough to defeat round 1's attempt + retry,
        # exhausted by the time the half-open probe runs
        plan = FaultPlan(faults=tuple(
            Fault(site="worker.command", kind="error", command="repair")
            for _ in range(2)))
        graph = small_kg_workload.dirty.copy(name="breaker")
        with WorkerPool(workers=2, inline=True, fault_plan=plan,
                        breaker=breaker) as pool:
            with RepairSession(graph, small_kg_workload.rules,
                               config=_warm_config(), pool=pool) as session:
                # round 1: the scripted errors defeat attempt + retry; the
                # pool failure trips the breaker (threshold 1) open
                session.repair()
                assert session.backend.last_fanout.fallback_reason \
                    == "pool-failure"
                assert breaker.state == "open"

                # round 2: the open breaker refuses the fan-out outright —
                # the pool is never touched, the drain serves the call
                session.apply(lambda g: _corrupt(g, 31))
                session.repair()
                assert session.backend.last_fanout.fallback_reason \
                    == "breaker-open"
                assert pool.stats.fallback_repairs == 2

                # round 3: cool-down elapsed — the half-open probe fans out
                # (the plan is exhausted), success closes the breaker
                clock[0] += 60.0
                session.apply(lambda g: _corrupt(g, 32))
                session.repair()
                assert not session.backend.last_fanout.fallback
                assert breaker.state == "closed"
        reference = _sequential_reference(small_kg_workload, "breaker-ref",
                                          seeds=(31, 32))
        assert graph.structurally_equal(reference)

    def test_take_lost_reports_only_out_of_barrier_replicas(self):
        # the simulated death kills every standing inline replica; keys in
        # the running barrier are re-driven, keys outside it are "lost"
        # and reported exactly once through take_lost()
        pool = WorkerPool(workers=1, inline=True, fault_plan=FaultPlan())
        pool._inline_states["old"] = _ClosableStub()
        pool._simulate_inline_death(
            Fault(site="worker.command", kind="crash"), barrier_keys={"new"})
        assert pool.take_lost(["old", "new"]) == {"old"}
        assert pool.take_lost(["old"]) == set()   # drained
        pool.close()


class _ClosableStub:
    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# real processes: SIGKILL and hangs (the CI smoke tests)
# ----------------------------------------------------------------------


class TestSpawnChaos:
    def test_sigkill_mid_repair_heals_transparently(self, small_kg_workload):
        """The ISSUE's acceptance scenario: SIGKILL a pool worker while it
        runs a shard repair → the barrier heals (respawn + rebind + one
        retry), the repair completes, the result equals the sequential
        backend's, and close() leaves no orphan process."""
        plan = FaultPlan(faults=(
            Fault(site="worker.command", kind="crash", command="repair",
                  worker=0),))
        config = RepairConfig.sharded(workers=2, warm=True,
                                      min_partition_nodes=1)
        graph = small_kg_workload.dirty.copy(name="sigkill")
        pool = WorkerPool(workers=2, fault_plan=plan)
        try:
            with RepairSession(graph, small_kg_workload.rules,
                               config=config, pool=pool) as session:
                session.repair()
                assert not session.backend.last_fanout.fallback
                assert pool.stats.worker_deaths == 1
                assert pool.stats.respawns == 1
                assert pool.stats.retries >= 1
                assert not pool.closed
        finally:
            pool.close()
        assert _no_pool_children()
        reference = _sequential_reference(small_kg_workload, "sigkill-ref")
        assert graph.structurally_equal(reference)

    def test_hung_worker_is_timed_out_and_respawned(self, small_kg_workload):
        plan = FaultPlan(faults=(
            Fault(site="worker.command", kind="hang", command="repair",
                  worker=0),))
        config = RepairConfig.sharded(workers=2, warm=True,
                                      min_partition_nodes=1)
        graph = small_kg_workload.dirty.copy(name="hung")
        pool = WorkerPool(workers=2, reply_timeout=3.0, fault_plan=plan)
        try:
            with RepairSession(graph, small_kg_workload.rules,
                               config=config, pool=pool) as session:
                session.repair()
                assert pool.stats.command_timeouts >= 1
                assert pool.stats.worker_deaths == 1
                assert pool.stats.respawns == 1
        finally:
            pool.close()
        assert _no_pool_children()
        reference = _sequential_reference(small_kg_workload, "hung-ref")
        assert graph.structurally_equal(reference)


# ----------------------------------------------------------------------
# WAL faults: full disks and torn frames
# ----------------------------------------------------------------------


class TestWalFaults:
    def test_enospc_fails_the_commit_before_the_ack(self, tmp_path):
        """A full disk during the durable append must fail the commit
        loudly — with tenant and sequence context — before any later
        subscriber (the ack side) observes the record."""
        plan = FaultPlan(faults=(Fault(site="wal.append", kind="enospc",
                                       at=2),))
        config = DurabilityConfig(dir=tmp_path, fsync=False, fault_plan=plan)
        graph = PropertyGraph(name="kg")
        observed: list[int] = []
        sink = TenantDurability("kg", config)
        sink.bootstrap(graph)
        with RepairSession(graph, RuleSet([])) as session:
            session.on_commit(lambda record: observed.append(record.sequence))
            sink.attach(session)   # prepended: durability outranks the ack
            session.apply(lambda g: g.add_node("Person"))
            with pytest.raises(DurabilityError) as excinfo:
                session.apply(lambda g: g.add_node("Person"))
            assert excinfo.value.tenant == "kg"
            assert excinfo.value.sequence == 2
            assert "NOT acknowledged" in str(excinfo.value)
        sink.close()
        # the failed record never reached the ack-side subscriber, and it
        # is not on disk either: recovery sees exactly the acknowledged
        # prefix
        assert observed == [1]
        recovered = recover("kg", DurabilityConfig(dir=tmp_path, fsync=False))
        assert recovered.sequence == 1
        assert recovered.graph.num_nodes == 1

    def test_torn_frame_is_truncated_and_recovery_keeps_the_prefix(
            self, tmp_path):
        plan = FaultPlan(faults=(Fault(site="wal.append", kind="torn",
                                       at=2),))
        config = DurabilityConfig(dir=tmp_path, fsync=False, fault_plan=plan)
        graph = PropertyGraph(name="kg")
        sink = TenantDurability("kg", config)
        sink.bootstrap(graph)
        with RepairSession(graph, RuleSet([])) as session:
            sink.attach(session)
            session.apply(lambda g: g.add_node("Person", {"name": "ok"}))
            with pytest.raises(DurabilityError):
                session.apply(lambda g: g.add_node("Person",
                                                   {"name": "doomed"}))
        sink.close()
        recovered = recover("kg", DurabilityConfig(dir=tmp_path, fsync=False))
        assert recovered.sequence == 1
        names = [node.properties.get("name")
                 for node in recovered.graph.nodes()]
        assert names == ["ok"]

    def test_fsync_failure_maps_to_durability_error_and_is_retryable(
            self, tmp_path):
        plan = FaultPlan(faults=(Fault(site="wal.fsync", kind="enospc"),))
        wal = WriteAheadLog(tmp_path, fsync=True, fault_plan=plan)
        with pytest.raises(DurabilityError) as excinfo:
            wal.append({"seq": 1, "kind": "probe"})
        assert excinfo.value.sequence == 1
        assert wal.last_sequence == 0
        # the failed frame was sealed away; once the condition clears the
        # same sequence appends cleanly
        assert wal.append({"seq": 1, "kind": "probe"}) == 1
        assert wal.last_sequence == 1
        wal.close()


# ----------------------------------------------------------------------
# ingest: retry backoff and the close()/tick() race
# ----------------------------------------------------------------------


class TestIngestBackoff:
    def _served(self, workload, config):
        service = GraphRepairService(inline_pool=True)
        service.serve("kg", workload.dirty.copy(name="kg"), workload.rules)
        front = IngestFront(service, config=config)
        front.register("kg")
        return service, front

    def test_failing_tenant_backs_off_exponentially(self, small_kg_workload):
        config = IngestConfig(repair_backoff_base=60.0,
                              repair_backoff_max=3600.0)
        service, front = self._served(small_kg_workload, config)
        calls = {"count": 0}
        healthy_repair = service.repair

        def failing_repair(name):
            calls["count"] += 1
            raise RuntimeError("injected repair failure")

        try:
            service.repair = failing_repair
            node = next(iter(service.sessions.get("kg").graph.nodes())).id
            ack = front.submit("kg", _touch(node, "marker", 1))
            front.tick()               # commit lands, the repair fails
            assert ack.wait(1.0) >= 1  # the commit itself was acknowledged
            stats = front.stats()["tenants"]["kg"]
            assert calls["count"] == 1
            assert stats["consecutive_failures"] == 1
            assert stats["backoffs"] == 1
            assert "injected repair failure" in stats["last_error"]

            front.tick()
            front.tick()               # inside the 60 s window: skipped
            assert calls["count"] == 1

            # the window elapses (cleared manually — no wall-clock waits in
            # tests), the repair is retried and a success resets the state
            service.repair = healthy_repair
            front._tenants["kg"].backoff_until = 0.0
            front.tick()
            stats = front.stats()["tenants"]["kg"]
            assert stats["consecutive_failures"] == 0
            assert stats["backoffs"] == 1
        finally:
            front.close()
            service.close()

    def test_zero_base_disables_backoff(self, small_kg_workload):
        config = IngestConfig(repair_backoff_base=0.0)
        service, front = self._served(small_kg_workload, config)
        calls = {"count": 0}

        def failing_repair(name):
            calls["count"] += 1
            raise RuntimeError("still failing")

        try:
            service.repair = failing_repair
            node = next(iter(service.sessions.get("kg").graph.nodes())).id
            front.submit("kg", _touch(node, "marker", 1))
            for _ in range(3):
                front.tick()
            assert calls["count"] == 3    # retried every tick, no backoff
            assert front.stats()["tenants"]["kg"]["backoffs"] == 0
        finally:
            front.close()
            service.close()

    def test_backoff_delay_doubles_and_caps(self, small_kg_workload):
        config = IngestConfig(repair_backoff_base=1.0, repair_backoff_max=3.0)
        service, front = self._served(small_kg_workload, config)

        def failing_repair(name):
            raise RuntimeError("boom")

        try:
            service.repair = failing_repair
            node = next(iter(service.sessions.get("kg").graph.nodes())).id
            front.submit("kg", _touch(node, "marker", 1))
            state = front._tenants["kg"]
            for expected_delay in (1.0, 2.0, 3.0, 3.0):  # capped at max
                state.backoff_until = 0.0   # expire the previous window
                before = time.monotonic()
                front.tick()
                assert state.backoff_until \
                    == pytest.approx(before + expected_delay, abs=0.5)
        finally:
            front.close()
            service.close()


class TestCloseTickRace:
    def test_close_racing_inflight_ticks_never_hangs_an_ack(
            self, small_kg_workload):
        """Acks caught between a background tick and close() must resolve
        (committed) or fail (AdmissionError/IngestError) — never hang."""
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            front = IngestFront(service)
            front.register("kg")
            node = next(iter(service.sessions.get("kg").graph.nodes())).id
            stop = threading.Event()

            def ticker():
                while not stop.is_set():
                    front.tick()

            thread = threading.Thread(target=ticker, daemon=True)
            thread.start()
            acks = []
            try:
                for index in range(200):
                    try:
                        acks.append(front.submit(
                            "kg", _touch(node, f"race{index}", index)))
                    except (AdmissionError, IngestError):
                        break       # close won the race: submits refused
                    if index == 120:
                        front.close()
            finally:
                stop.set()
                thread.join(5.0)
            assert not thread.is_alive()
            assert len(acks) > 0
            resolved = failed = 0
            for ack in acks:
                try:
                    ack.wait(5.0)   # a TimeoutError here fails the test
                    resolved += 1
                except (AdmissionError, IngestError):
                    failed += 1
            assert resolved + failed == len(acks)
            assert failed >= 1      # close() failed the still-queued tail
            front.close()           # idempotent


# ----------------------------------------------------------------------
# service surfacing: health and /metrics
# ----------------------------------------------------------------------


class TestServiceSurfacing:
    def test_health_reports_pool_and_breaker(self, small_kg_workload):
        with GraphRepairService(inline_pool=True) as service:
            assert "pool" not in service.health()
            zeros = service.pool_stats
            assert zeros["respawns"] == 0 and zeros["fallback_repairs"] == 0
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules, shards=2)
            service.repair("kg")
            document = service.health()
            pool_doc = document["pool"]
            assert pool_doc["workers"] >= 2
            assert pool_doc["respawns"] == 0
            assert pool_doc["fallback_repairs"] == 0
            assert pool_doc["breaker"]["state"] == "closed"
            assert pool_doc["breaker"]["failure_threshold"] >= 1
            assert set(service.pool_stats) == set(zeros)

    def test_metrics_expose_breaker_state_gauge(self, small_kg_workload):
        from repro import telemetry

        telemetry.enable()
        try:
            with GraphRepairService(inline_pool=True) as service:
                service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                              small_kg_workload.rules, shards=2)
                service.repair("kg")
                snapshot = service.telemetry_snapshot()
                assert snapshot.get("repro_pool_breaker_state").value() \
                    == BREAKER_STATE_VALUES["closed"]
        finally:
            telemetry.disable()
            # drain the spans this test's repairs parked on the process
            # tracer — later tests assert the shared tracer starts empty
            telemetry.TELEMETRY.tracer.export_finished(drain=True)
