"""The service layer: session manager, routing, and concurrent equivalence.

The load-bearing case is the threaded stress test: N threads staging,
committing, and repairing against one service interleave arbitrarily, yet
the committed history the changefeed records is a total order — replaying
exactly that order through a fresh single-threaded session must land on the
identical graph.  Concurrency may change *which* interleaving happens,
never the integrity of the one that did.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import RepairConfig, RepairSession
from repro.exceptions import ServiceError, SessionStateError
from repro.graph.delta import recording
from repro.graph.io import graph_to_dict
from repro.service import GraphRepairService, SessionManager


def _exactly_equal(left, right) -> bool:
    a = graph_to_dict(left)
    b = graph_to_dict(right)
    a.pop("name", None)
    b.pop("name", None)
    return json.dumps(a, sort_keys=True, default=repr) \
        == json.dumps(b, sort_keys=True, default=repr)


class TestSessionManager:
    def test_open_get_close_lifecycle(self, small_kg_workload):
        manager = SessionManager()
        session = manager.open("kg", small_kg_workload.dirty.copy(),
                               small_kg_workload.rules)
        assert manager.get("kg") is session
        assert manager.names() == ["kg"]
        assert "kg" in manager and len(manager) == 1
        manager.close_session("kg")
        assert session.closed
        assert "kg" not in manager
        manager.close()
        with pytest.raises(ServiceError):
            manager.get("kg")

    def test_duplicate_and_unknown_names(self, small_kg_workload):
        with SessionManager() as manager:
            manager.open("kg", small_kg_workload.dirty.copy(),
                         small_kg_workload.rules)
            with pytest.raises(ServiceError):
                manager.open("kg", small_kg_workload.dirty.copy(),
                             small_kg_workload.rules)
            with pytest.raises(ServiceError):
                manager.get("nope")
            with pytest.raises(ServiceError):
                manager.close_session("nope")

    def test_close_closes_every_session(self, small_kg_workload):
        manager = SessionManager()
        first = manager.open("a", small_kg_workload.dirty.copy(),
                             small_kg_workload.rules)
        second = manager.open("b", small_kg_workload.dirty.copy(),
                              small_kg_workload.rules)
        manager.close()
        assert first.closed and second.closed
        assert manager.closed


class TestServiceBasics:
    def test_serve_repair_and_feed(self, small_kg_workload,
                                   small_movie_workload):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules, shards=2)
            service.serve("movies",
                          small_movie_workload.dirty.copy(name="movies"),
                          small_movie_workload.rules)
            reports = service.repair_all()
            assert sorted(reports) == ["kg", "movies"]
            assert all(r.repairs_applied > 0 for r in reports.values())
            assert service.deltas("kg")[0].source == "repair"
            # sharded tenant went through the shared pool
            assert service.pool_stats["binds"] >= 2
        assert service.closed

    def test_sharded_tenant_equals_plain_session(self, small_kg_workload):
        reference = small_kg_workload.dirty.copy(name="ref")
        with RepairSession(reference, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            session.repair()
        with GraphRepairService(inline_pool=True) as service:
            served = service.serve(
                "kg", small_kg_workload.dirty.copy(name="kg"),
                small_kg_workload.rules,
                config=RepairConfig.sharded(workers=2, warm=True,
                                            parallel_inline=True,
                                            min_partition_nodes=1))
            service.repair("kg")
            assert served.graph.structurally_equal(reference)

    def test_shards_and_config_are_exclusive(self, small_kg_workload):
        with GraphRepairService(inline_pool=True) as service:
            with pytest.raises(ServiceError):
                service.serve("kg", small_kg_workload.dirty.copy(),
                              small_kg_workload.rules,
                              config=RepairConfig.fast(), shards=2)

    def test_stop_serving_releases_name(self, small_kg_workload):
        with GraphRepairService() as service:
            service.serve("kg", small_kg_workload.dirty.copy(),
                          small_kg_workload.rules)
            service.stop_serving("kg")
            assert service.names() == []
            service.serve("kg", small_kg_workload.dirty.copy(),
                          small_kg_workload.rules)
            assert service.names() == ["kg"]

    def test_closed_service_refuses_serving(self, small_kg_workload):
        service = GraphRepairService()
        service.close()
        with pytest.raises(ServiceError):
            service.serve("kg", small_kg_workload.dirty.copy(),
                          small_kg_workload.rules)


class TestRouting:
    def test_routes_to_unique_owner(self, small_kg_workload,
                                    small_social_workload):
        with GraphRepairService() as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            service.serve("social",
                          small_social_workload.dirty.copy(name="social"),
                          small_social_workload.rules)
            kg_graph = service.graph("kg")
            social_graph = service.graph("social")
            # the generated domains share an id prefix (n0, n1, ...): anchor
            # at a node only the larger graph holds, whichever that is
            owner, owner_graph, other = ("kg", kg_graph, social_graph) \
                if kg_graph.num_nodes > social_graph.num_nodes \
                else ("social", social_graph, kg_graph)
            anchor = next(n for n in owner_graph.node_ids()
                          if not other.has_node(n))
            scratch = owner_graph.copy()
            with recording(scratch) as recorder:
                node = scratch.add_node("Person", {"name": "routed"})
                scratch.add_edge(node.id, anchor, "knows")
            name, result = service.apply_routed(recorder.drain())
            assert name == owner
            assert result.changes == 2
            assert service.deltas(owner)[-1].source == "commit"

    def test_ambiguous_and_unroutable_deltas(self, small_kg_workload,
                                             small_social_workload):
        with GraphRepairService() as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            service.serve("social",
                          small_social_workload.dirty.copy(name="social"),
                          small_social_workload.rules)
            shared = next(n for n in service.graph("kg").node_ids()
                          if service.graph("social").has_node(n))
            scratch = service.graph("kg").copy()
            with recording(scratch) as recorder:
                scratch.update_node(shared, {"touched": True})
            with pytest.raises(ServiceError, match="ambiguous"):
                service.route(recorder.drain())

            lonely = scratch.copy()
            with recording(lonely) as recorder:
                lonely.add_node("Person", {"name": "island"})
            with pytest.raises(ServiceError, match="no pre-existing"):
                service.route(recorder.drain())


WORKLOAD_FIXTURES = ("small_kg_workload", "small_movie_workload",
                     "small_social_workload")


@pytest.fixture(params=WORKLOAD_FIXTURES)
def workload(request):
    return request.getfixturevalue(request.param)


class TestConcurrentEquivalence:
    THREADS = 4
    OPS_PER_THREAD = 8

    def _stress(self, service, name) -> None:
        """N threads stage+commit independent edits and trigger repairs."""
        errors: list[BaseException] = []

        def hammer(thread_index: int) -> None:
            try:
                for op in range(self.OPS_PER_THREAD):
                    def edit(g, thread_index=thread_index, op=op):
                        node = g.add_node(
                            "Person",
                            {"name": f"t{thread_index}-{op}"})
                        g.add_edge(node.id, g.node_ids()[thread_index],
                                   "knows")
                    service.apply(name, edit)
                    if op % 3 == thread_index % 3:
                        service.repair(name)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(index,))
                   for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

    @pytest.mark.parametrize("serve_kwargs", [
        {},
        {"shards": 2},
    ], ids=["fast-backend", "warm-sharded"])
    def test_threaded_service_equals_sequential_replay(self, workload,
                                                       serve_kwargs):
        opening = workload.dirty.copy(name="opening")
        with GraphRepairService(inline_pool=True) as service:
            live = service.serve("tenant", opening.copy(name="live"),
                                 workload.rules, **serve_kwargs)
            self._stress(service, "tenant")
            service.repair("tenant")  # settle whatever the last edits broke
            records = live.deltas()
            final = live.graph

            # sequential replay: a fresh single-threaded session applies the
            # SAME committed history in the feed's total order
            replay = opening.copy(name="replay")
            with RepairSession(replay, workload.rules,
                               config=RepairConfig.fast()) as replayer:
                for record in records:
                    if record.source == "commit":
                        replayer.apply(record.delta)
                    else:
                        record.replay_onto(replay)
            assert _exactly_equal(replay, final)
            # and the feed alone rebuilds it too (pure replica, no session)
            replica = opening.copy(name="replica")
            for record in records:
                record.replay_onto(replica)
            assert _exactly_equal(replica, final)

    def test_two_tenants_hammered_from_threads(self, small_kg_workload,
                                               small_movie_workload):
        """Both tenants sharded over the ONE shared pool, hammered from
        threads — pool barriers from different tenants must interleave
        atomically (the pool's internal lock), and repairs stay correct."""
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules, shards=2)
            service.serve("movies",
                          small_movie_workload.dirty.copy(name="movies"),
                          small_movie_workload.rules, shards=2)
            workers = [threading.Thread(target=self._stress,
                                        args=(service, name))
                       for name in ("kg", "movies")]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            reports = service.repair_all()
            assert reports["kg"].remaining_violations == 0
            assert reports["movies"].remaining_violations == 0

    def test_transaction_blocks_are_atomic_across_threads(self,
                                                          small_kg_workload):
        """A reader thread never observes a half-applied transaction."""
        graph = small_kg_workload.dirty.copy()
        observed: list[int] = []
        with RepairSession(graph, small_kg_workload.rules) as session:
            def writer():
                for index in range(10):
                    with session.transaction() as g:
                        g.add_node("Person", {"pair": index})
                        g.add_node("Person", {"pair": index})
                    session.commit()

            def reader():
                for _ in range(50):
                    with session.transaction() as g:
                        observed.append(g.count_nodes_with_label("Person"))

            threads = [threading.Thread(target=writer),
                       threading.Thread(target=reader)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        baseline = observed[0]
        # pairs land atomically: every observed count has the same parity
        assert all((count - baseline) % 2 == 0 for count in observed)


class TestShutdownHygiene:
    """Service teardown must reclaim every owned resource — child worker
    processes above all — even when an individual close step raises."""

    def test_close_reaps_all_worker_processes(self, small_kg_workload):
        import multiprocessing

        before = {child.pid for child in multiprocessing.active_children()}
        service = GraphRepairService()
        service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                      small_kg_workload.rules, shards=2)
        service.repair("kg")  # spawns the warm pool's real processes
        spawned = [child for child in multiprocessing.active_children()
                   if child.pid not in before]
        assert spawned, "the warm pool should have spawned child processes"
        service.close()
        service.close()  # idempotent
        for child in spawned:
            child.join(timeout=30)
        leaked = [child for child in multiprocessing.active_children()
                  if child.pid not in before]
        assert leaked == [], f"leaked worker processes: {leaked}"

    def test_failing_session_close_does_not_leak_the_pool(
            self, small_kg_workload, monkeypatch):
        import multiprocessing

        before = {child.pid for child in multiprocessing.active_children()}
        service = GraphRepairService()
        service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                      small_kg_workload.rules, shards=2)
        service.repair("kg")
        session = service.session("kg")
        monkeypatch.setattr(session, "close",
                            lambda: (_ for _ in ()).throw(
                                RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            service.close()
        assert service.closed and service.pool is None
        for child in multiprocessing.active_children():
            if child.pid not in before:
                child.join(timeout=30)
        leaked = [child for child in multiprocessing.active_children()
                  if child.pid not in before]
        assert leaked == [], f"leaked worker processes: {leaked}"

    def test_manager_close_sweeps_past_a_failing_session(
            self, small_kg_workload, monkeypatch):
        manager = SessionManager()
        first = manager.open("a", small_kg_workload.dirty.copy(),
                             small_kg_workload.rules)
        second = manager.open("b", small_kg_workload.dirty.copy(),
                              small_kg_workload.rules)
        monkeypatch.setattr(first, "close",
                            lambda: (_ for _ in ()).throw(
                                RuntimeError("first")))
        with pytest.raises(RuntimeError, match="first"):
            manager.close()
        assert second.closed, "the sweep must continue past the failure"
