"""Unit tests for the textual GRR DSL parser."""

from __future__ import annotations

import pytest

from repro.exceptions import RuleParseError
from repro.rules import Semantics, parse_rules, parse_rules_file
from repro.rules.operations import (
    AddEdge,
    AddNode,
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    UpdateNode,
    ValueRef,
)


GOOD_DOCUMENT = """
# a comment before the first rule is fine

RULE add-nationality INCOMPLETENESS PRIORITY 5
  # person born in a city gets the country
  MATCH (p:Person)-[:bornIn]->(c:City)
  MATCH (c)-[:inCountry]->(k:Country)
  MISSING (p)-[:nationality]->(k)
  REPAIR ADD_EDGE (p)-[:nationality]->(k)

RULE single-birthplace CONFLICT PRIORITY 8
  MATCH (p:Person)-[e1:bornIn]->(c1:City)
  MATCH (p)-[e2:bornIn]->(c2:City)
  WHERE e1.confidence >= e2.confidence
  REPAIR DELETE_EDGE e2

RULE dedup-person REDUNDANCY
  MATCH (a:Person)-[:bornIn]->(c:City)<-[:bornIn]-(b:Person)
  WHERE a.name == b.name
  REPAIR MERGE b INTO a
"""


class TestParserHappyPath:
    def test_parses_all_rules_with_metadata(self):
        rules = parse_rules(GOOD_DOCUMENT, name="doc")
        assert rules.names() == ["add-nationality", "single-birthplace", "dedup-person"]
        assert rules.get("add-nationality").semantics is Semantics.INCOMPLETENESS
        assert rules.get("add-nationality").priority == 5
        assert "country" in rules.get("add-nationality").description

    def test_paths_and_reverse_edges(self):
        rule = parse_rules(GOOD_DOCUMENT).get("dedup-person")
        assert set(rule.pattern.variables) == {"a", "b", "c"}
        labels = {(edge.source, edge.target) for edge in rule.pattern.edges}
        assert labels == {("a", "c"), ("b", "c")}
        assert isinstance(rule.operations[0], MergeNodes)
        assert rule.operations[0].keep == "a" and rule.operations[0].merge == "b"

    def test_edge_variables_and_comparisons(self):
        rule = parse_rules(GOOD_DOCUMENT).get("single-birthplace")
        assert set(rule.pattern.edge_variables) == {"e1", "e2"}
        assert len(rule.pattern.comparisons) == 1
        assert isinstance(rule.operations[0], DeleteEdge)

    def test_missing_clause_produces_missing_pattern(self):
        rule = parse_rules(GOOD_DOCUMENT).get("add-nationality")
        assert rule.missing is not None
        assert rule.missing.edge_labels() == {"nationality"}

    def test_parse_file(self, tmp_path):
        path = tmp_path / "rules.grr"
        path.write_text(GOOD_DOCUMENT, encoding="utf-8")
        rules = parse_rules_file(path)
        assert len(rules) == 3
        assert rules.name == "rules"

    def test_round_trip_with_canned_library_equivalent(self, tiny_kg):
        """The parsed rule set detects the same violations as the builder-built one."""
        from repro.repair import detect_violations

        parsed = parse_rules(GOOD_DOCUMENT)
        detection = detect_violations(tiny_kg, parsed)
        assert len(detection) > 0
        kinds = set(detection.per_semantics())
        assert "redundancy" in kinds and "incompleteness" in kinds


class TestParserOperations:
    def test_add_node_with_properties_and_value_refs(self):
        text = """
RULE make-registry INCOMPLETENESS
  MATCH (p:Person)-[:bornIn]->(c:City)
  MISSING (p)-[:registeredIn]->(c)
  REPAIR ADD_NODE (r:Registry {kind = "civil", city = c.name})
  REPAIR ADD_EDGE (p)-[:registeredIn]->(c)
"""
        rule = parse_rules(text).get("make-registry")
        add_node = rule.operations[0]
        assert isinstance(add_node, AddNode)
        assert add_node.properties["kind"] == "civil"
        assert add_node.properties["city"] == ValueRef("c", "name")
        assert isinstance(rule.operations[1], AddEdge)

    def test_update_node_set_remove_label_forms(self):
        text = """
RULE normalize CONFLICT
  MATCH (p:Person)-[e:bornIn]->(c:City)
  WHERE p.age > 200
  REPAIR UPDATE_NODE p SET age = 0, source = "fixup"
  REPAIR UPDATE_NODE p REMOVE legacy
  REPAIR DELETE_EDGE (p)-[:bornIn]->(c)
"""
        rule = parse_rules(text).get("normalize")
        update = rule.operations[0]
        assert isinstance(update, UpdateNode)
        assert update.set_properties == {"age": 0, "source": "fixup"}
        assert rule.operations[1].remove_keys == ("legacy",)
        delete = rule.operations[2]
        assert isinstance(delete, DeleteEdge) and delete.label == "bornIn"

    def test_delete_node_and_literals(self):
        text = """
RULE purge REDUNDANCY
  MATCH (a:Person)-[:bornIn]->(c:City)<-[:bornIn]-(b:Person)
  WHERE a.name == b.name
  WHERE b.verified == false
  REPAIR DELETE_NODE b
"""
        rule = parse_rules(text).get("purge")
        assert isinstance(rule.operations[0], DeleteNode)
        literal_comparisons = [c for c in rule.pattern.comparisons if c.right_literal]
        assert literal_comparisons and literal_comparisons[0].right_value is False

    def test_has_and_missing_predicates(self):
        text = """
RULE needs-name CONFLICT
  MATCH (p:Person)-[e:bornIn]->(c:City)
  WHERE MISSING p.name
  WHERE HAS c.name
  REPAIR DELETE_EDGE e
"""
        rule = parse_rules(text).get("needs-name")
        person = rule.pattern.node_variable("p")
        city = rule.pattern.node_variable("c")
        assert any(pred.op.value == "missing" for pred in person.predicates)
        assert any(pred.op.value == "exists" for pred in city.predicates)


class TestParserErrors:
    @pytest.mark.parametrize("text", [
        "RULE broken WRONGKIND\n  MATCH (a:Person)\n  REPAIR DELETE_NODE a",
        "MATCH (a:Person)",                                  # content outside RULE
        "RULE x CONFLICT\n  MATCH (a:Person\n  REPAIR DELETE_NODE a",  # bad node ref
        "RULE x CONFLICT\n  MATCH (a:Person)-[:r]-(b:City)\n  REPAIR DELETE_NODE a",  # bad edge arrow
        "RULE x CONFLICT\n  MATCH (a:Person)\n  REPAIR FROBNICATE a",  # unknown op
        "RULE x CONFLICT\n  MATCH (a:Person)\n  WHERE a.name ~ 3\n  REPAIR DELETE_NODE a",
        "",                                                   # no rules at all
    ], ids=["bad-semantics", "outside-rule", "bad-node", "bad-edge", "unknown-op",
            "bad-where", "empty"])
    def test_malformed_documents_raise(self, text):
        with pytest.raises(RuleParseError):
            parse_rules(text)

    def test_parse_error_carries_line_number(self):
        text = "RULE x CONFLICT\n  MATCH (a:Person)\n  REPAIR FROBNICATE a"
        with pytest.raises(RuleParseError) as excinfo:
            parse_rules(text)
        assert excinfo.value.line == 3
