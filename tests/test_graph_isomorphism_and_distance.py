"""Unit tests for small-graph isomorphism and edit distance."""

from __future__ import annotations

import pytest

from repro.graph import (
    PropertyGraph,
    approximate_edit_distance,
    are_isomorphic,
    contains_subgraph,
    cycle_graph,
    find_subgraph_embedding,
    labeled_edit_distance,
    path_graph,
)


def relabelled_copy(graph: PropertyGraph, prefix: str) -> PropertyGraph:
    """Copy a graph with fresh node ids (same labels / structure)."""
    clone = PropertyGraph(name=f"{graph.name}-renamed")
    mapping = {}
    for node in graph.nodes():
        mapping[node.id] = clone.add_node(node.label, dict(node.properties),
                                          node_id=f"{prefix}{node.id}").id
    for edge in graph.edges():
        clone.add_edge(mapping[edge.source], mapping[edge.target], edge.label,
                       dict(edge.properties))
    return clone


class TestIsomorphism:
    def test_isomorphic_to_renamed_copy(self, triangle_graph):
        other = relabelled_copy(triangle_graph, "x_")
        assert are_isomorphic(triangle_graph, other)

    def test_different_sizes_are_not_isomorphic(self):
        assert not are_isomorphic(path_graph(2), path_graph(3))

    def test_same_size_different_structure(self):
        assert not are_isomorphic(path_graph(3), cycle_graph(4))

    def test_labels_matter(self):
        first = PropertyGraph()
        a = first.add_node("X")
        b = first.add_node("Y")
        first.add_edge(a.id, b.id, "r")
        second = PropertyGraph()
        c = second.add_node("X")
        d = second.add_node("X")
        second.add_edge(c.id, d.id, "r")
        assert not are_isomorphic(first, second)

    def test_property_comparison_is_optional(self):
        first = PropertyGraph()
        first.add_node("X", {"name": "a"})
        second = PropertyGraph()
        second.add_node("X", {"name": "b"})
        assert are_isomorphic(first, second)
        assert not are_isomorphic(first, second, compare_properties=True)

    def test_subgraph_embedding_found(self, tiny_kg):
        small = PropertyGraph()
        person = small.add_node("Person")
        city = small.add_node("City")
        small.add_edge(person.id, city.id, "bornIn")
        embedding = find_subgraph_embedding(small, tiny_kg)
        assert embedding is not None
        assert tiny_kg.node(embedding[person.id]).label == "Person"
        assert contains_subgraph(small, tiny_kg)

    def test_subgraph_embedding_absent(self, tiny_kg):
        small = PropertyGraph()
        a = small.add_node("Country")
        b = small.add_node("Country")
        small.add_edge(a.id, b.id, "borders")
        assert find_subgraph_embedding(small, tiny_kg) is None


class TestLabeledEditDistance:
    def test_identical_graphs_have_zero_distance(self, tiny_kg):
        result = labeled_edit_distance(tiny_kg, tiny_kg.copy())
        assert result.distance == 0.0
        assert result.total_operations() == 0

    def test_edge_removal_costs_one(self, tiny_kg):
        modified = tiny_kg.copy()
        modified.remove_edge(modified.edge_ids()[0])
        result = labeled_edit_distance(tiny_kg, modified)
        assert result.edge_deletions == 1
        assert result.distance == pytest.approx(1.0)

    def test_node_addition_and_property_change(self, tiny_kg):
        modified = tiny_kg.copy()
        modified.add_node("Person", {"name": "Zed"})
        person = next(iter(modified.nodes_with_label("Country")))
        modified.update_node(person.id, {"name": "Renamed"})
        result = labeled_edit_distance(tiny_kg, modified)
        assert result.node_insertions == 1
        assert result.node_property_changes == 1

    def test_relabel_detected(self, triangle_graph):
        modified = triangle_graph.copy()
        modified.relabel_node(modified.node_ids()[0], "W")
        result = labeled_edit_distance(triangle_graph, modified)
        assert result.node_relabels == 1


class TestApproximateEditDistance:
    def test_zero_for_renamed_copy(self, triangle_graph):
        other = relabelled_copy(triangle_graph, "y_")
        assert approximate_edit_distance(triangle_graph, other) == 0.0

    def test_grows_with_perturbation(self, tiny_kg):
        one_change = tiny_kg.copy()
        one_change.remove_edge(one_change.edge_ids()[0])
        many_changes = one_change.copy()
        for edge_id in many_changes.edge_ids()[:4]:
            many_changes.remove_edge(edge_id)
        small = approximate_edit_distance(tiny_kg, one_change)
        large = approximate_edit_distance(tiny_kg, many_changes)
        assert 0.0 < small <= large
