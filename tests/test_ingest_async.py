"""Asyncio-facade tests: many event-loop clients multiplexed over one
thread-backed ingest front, equivalence against sequential replay, and
flooding-tenant admission control.

The equivalence contract has two strengths, tested separately:

* **edits-then-repair** (deterministic): when every repair happens after
  all edits (traffic committed by a flusher, repairs at the end), the
  final graph is **element-for-element identical** to replaying the
  feed's commit deltas sequentially onto a fresh copy and repairing —
  across two domains at once.
* **eager scheduling** (repairs interleave with traffic): repair-created
  element ids then depend on scheduling, so the pinned invariant is the
  changefeed's own: replaying *every* published record (commits and
  repairs, in feed order) onto the opening graph reconstructs the final
  state exactly.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import telemetry
from repro.exceptions import AdmissionError
from repro.graph.io import graph_to_dict
from repro.ingest import (
    AsyncRepairService,
    IngestConfig,
    IngestFront,
    TenantQuota,
)
from repro.service import GraphRepairService


def _exactly_equal(left, right) -> bool:
    a = graph_to_dict(left)
    b = graph_to_dict(right)
    a.pop("name", None)
    b.pop("name", None)
    return json.dumps(a, sort_keys=True, default=repr) \
        == json.dumps(b, sort_keys=True, default=repr)


def _touch(node_id, key, value):
    return lambda graph: graph.update_node(node_id, {key: value})


def _first_node(service, name):
    return next(iter(service.sessions.get(name).graph.nodes())).id


def _serve_two_domains(service, small_kg_workload, small_movie_workload):
    service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                  small_kg_workload.rules)
    service.serve("movies", small_movie_workload.dirty.copy(name="movies"),
                  small_movie_workload.rules)


class TestAsyncEquivalence:
    def test_async_traffic_equals_sequential_replay(self, small_kg_workload,
                                                    small_movie_workload):
        """8 async clients x 2 domains; commits flow during traffic,
        repairs run once afterwards — the graphs must equal a sequential
        replay of each feed's commit deltas plus one repair, exactly."""
        openings = {
            "kg": small_kg_workload.dirty.copy(name="kg-opening"),
            "movies": small_movie_workload.dirty.copy(name="movies-opening"),
        }
        rules = {"kg": small_kg_workload.rules,
                 "movies": small_movie_workload.rules}
        with GraphRepairService(inline_pool=True) as service:
            _serve_two_domains(service, small_kg_workload,
                               small_movie_workload)
            with IngestFront(service) as front:
                front.register("kg", TenantQuota(max_pending=512))
                front.register("movies", TenantQuota(max_pending=512))
                aio = AsyncRepairService(front)
                nodes = {name: _first_node(service, name)
                         for name in ("kg", "movies")}

                # a flusher commits queued edits during traffic; no repairs
                stop = threading.Event()

                def flusher():
                    while not stop.wait(0.002):
                        front.flush()

                pump = threading.Thread(target=flusher, daemon=True)
                pump.start()

                async def client(tenant, client_id, count):
                    node = nodes[tenant]
                    return [await aio.submit(
                        tenant, _touch(node, f"c{client_id}_k{i}", i))
                        for i in range(count)]

                async def main():
                    return await asyncio.gather(
                        *(client(t, c, 10)
                          for t in ("kg", "movies") for c in range(8)))

                sequences = asyncio.run(main())
                stop.set()
                pump.join(2.0)
                front.flush()
                assert all(seq >= 1 for per_client in sequences
                           for seq in per_client)
                assert front.stats()["tenants"]["kg"]["repairs"] == 0

                service.repair_all()  # repairs strictly after all edits
                for name in ("kg", "movies"):
                    replay = openings[name].copy(name=f"{name}-replay")
                    commits = [r for r in service.deltas(name)
                               if r.source == "commit"]
                    assert commits  # traffic actually flowed
                    with GraphRepairService(inline_pool=True) as sequential:
                        session = sequential.serve(name, replay, rules[name])
                        for record in commits:
                            session.apply(record.delta)
                        sequential.repair(name)
                        assert _exactly_equal(
                            session.graph, service.sessions.get(name).graph)

    def test_eager_scheduling_preserves_feed_replay_exactness(
            self, small_kg_workload, small_movie_workload):
        """With the background scheduler interleaving repairs into live
        async traffic, the feed must still rebuild the final graph."""
        openings = {
            "kg": small_kg_workload.dirty.copy(name="kg-opening"),
            "movies": small_movie_workload.dirty.copy(name="movies-opening"),
        }
        with GraphRepairService(inline_pool=True) as service:
            _serve_two_domains(service, small_kg_workload,
                               small_movie_workload)
            config = IngestConfig(tick_interval=0.002)
            with IngestFront(service, config) as front:
                front.register("kg", TenantQuota(max_pending=512))
                front.register("movies", TenantQuota(max_pending=512))
                front.start()
                aio = AsyncRepairService(front)
                nodes = {name: _first_node(service, name)
                         for name in ("kg", "movies")}

                async def client(tenant, client_id, count):
                    node = nodes[tenant]
                    for i in range(count):
                        await aio.submit(
                            tenant, _touch(node, f"c{client_id}_k{i}", i))

                async def main():
                    await asyncio.gather(
                        *(client(t, c, 8)
                          for t in ("kg", "movies") for c in range(6)))
                    await aio.quiesce(timeout=30.0)

                asyncio.run(main())
                stats = front.stats()["tenants"]
                assert stats["kg"]["repairs"] >= 1
                assert stats["movies"]["repairs"] >= 1
                for name in ("kg", "movies"):
                    assert service.staleness()[name].pending_deltas == 0
                    replica = openings[name].copy(name=f"{name}-replica")
                    for record in service.deltas(name):
                        record.replay_onto(replica)
                    assert _exactly_equal(replica,
                                          service.sessions.get(name).graph)


class TestAsyncReadYourWrites:
    def test_submit_and_wait_covers_the_write(self, small_kg_workload):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            with IngestFront(service,
                             IngestConfig(tick_interval=0.002)) as front:
                front.register("kg")
                front.start()
                aio = AsyncRepairService(front)
                node = _first_node(service, "kg")

                async def main():
                    seq = await aio.submit_and_wait(
                        "kg", _touch(node, "ryw", 42), timeout=10.0)
                    return seq

                sequence = asyncio.run(main())
                stale = service.staleness()["kg"]
                assert stale.repaired_through >= sequence
                graph = service.sessions.get("kg").graph
                assert graph.node(node).properties["ryw"] == 42

    def test_wait_for_repair_times_out_without_scheduler(self,
                                                         small_kg_workload):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            with IngestFront(service) as front:
                front.register("kg")
                aio = AsyncRepairService(front)
                node = _first_node(service, "kg")

                async def main():
                    ack = front.submit("kg", _touch(node, "x", 1))
                    front.flush("kg")  # committed, never repaired
                    with pytest.raises(asyncio.TimeoutError):
                        await aio.wait_for_repair("kg", ack.wait(1.0),
                                                  timeout=0.05)

                asyncio.run(main())


class TestAsyncAdmission:
    def test_flooding_tenant_is_rejected_not_its_neighbour(
            self, small_kg_workload, small_movie_workload):
        """A tenant flooding a tiny reject-policy queue collects
        AdmissionErrors while the well-behaved tenant's traffic commits
        and repairs untouched."""
        with GraphRepairService(inline_pool=True) as service:
            _serve_two_domains(service, small_kg_workload,
                               small_movie_workload)
            config = IngestConfig(tick_interval=0.01)
            with IngestFront(service, config) as front:
                front.register("kg", TenantQuota(max_pending=4,
                                                 policy="reject"))
                front.register("movies", TenantQuota(max_pending=256))
                front.start()
                aio = AsyncRepairService(front)
                flood_node = _first_node(service, "kg")
                quiet_node = _first_node(service, "movies")

                async def flood(i):
                    try:
                        await aio.submit("kg",
                                         _touch(flood_node, f"f{i}", i))
                        return "ok"
                    except AdmissionError as exc:
                        assert exc.tenant == "kg"
                        return exc.reason

                async def quiet(i):
                    return await aio.submit(
                        "movies", _touch(quiet_node, f"q{i}", i))

                async def main():
                    results = await asyncio.gather(
                        *(flood(i) for i in range(200)),
                        *(quiet(i) for i in range(20)))
                    await aio.quiesce(timeout=30.0)
                    return results

                results = asyncio.run(main())
                flood_results = results[:200]
                quiet_results = results[200:]
                assert flood_results.count("full") > 0  # backpressure fired
                assert all(isinstance(seq, int) for seq in quiet_results)
                stats = front.stats()["tenants"]
                assert stats["kg"]["rejected"] > 0
                assert stats["movies"]["rejected"] == 0
                assert stats["movies"]["repairs"] >= 1

    def test_shed_policy_surfaces_as_admission_error(self,
                                                     small_kg_workload):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            with IngestFront(service) as front:
                front.register("kg", TenantQuota(max_pending=2,
                                                 policy="shed_oldest"))
                aio = AsyncRepairService(front)
                node = _first_node(service, "kg")

                async def main():
                    # fill the queue, then one more: the oldest is shed
                    first = asyncio.ensure_future(
                        aio.submit("kg", _touch(node, "a", 1)))
                    await asyncio.sleep(0.05)  # first reaches the queue
                    front.submit("kg", _touch(node, "b", 2))
                    front.submit("kg", _touch(node, "c", 3))
                    with pytest.raises(AdmissionError) as excinfo:
                        await first
                    assert excinfo.value.reason == "shed"

                asyncio.run(main())

    def test_many_clients_one_loop_smoke(self, small_kg_workload):
        """50 concurrent event-loop clients over one front: everything
        commits, the loop never blocks on a queue."""
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            config = IngestConfig(tick_interval=0.002)
            with IngestFront(service, config) as front:
                front.register("kg", TenantQuota(max_pending=4096))
                front.start()
                aio = AsyncRepairService(front)
                node = _first_node(service, "kg")

                async def client(c):
                    return await aio.submit("kg", _touch(node, f"m{c}", c))

                async def main():
                    seqs = await asyncio.gather(
                        *(client(c) for c in range(50)))
                    await aio.quiesce(timeout=30.0)
                    return seqs

                sequences = asyncio.run(main())
                assert len(sequences) == 50
                stats = front.stats()["tenants"]["kg"]
                assert stats["committed"] == 50
                assert stats["coalesced"] > 0  # batching actually happened
                assert stats["latency_p99"] >= stats["latency_p50"] >= 0.0
