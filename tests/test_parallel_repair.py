"""Unit tests of the ``repro.parallel`` subsystem.

Partitioning invariants, the spawn-safe worker protocol, delta merging with
conflict detection, graceful single-worker degradation, and batch
independence of the fast core (the property the whole fan-out rests on).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RepairConfig, RepairSession, available_backends, build_backend
from repro.graph.property_graph import PropertyGraph
from repro.matching.pattern import Match, Pattern, PatternEdge, PatternNode
from repro.parallel import (
    DeltaMerger,
    ShardedRepairer,
    ShardTask,
    partition_graph,
    rule_radius,
    run_shard_task,
    shard_from_payload,
    shard_payload,
)
from repro.parallel.worker import ShardResult, execute_tasks
from repro.repair.fast import AppliedRepair, FastRepairConfig, FastRepairCore
from repro.repair.violation import Violation
from repro.graph.delta import recording
from repro.rules.builder import conflict_rule
from repro.rules.grr import RuleSet
from repro.rules.library import knowledge_graph_rules, movie_rules, social_rules


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------


class TestRuleRadius:
    def test_kg_rules_radius_covers_three_hop_patterns(self):
        # kg-nationality-matches-birthplace spans p-c-k1 plus p-k2: the
        # farthest pair (k1, k2) is 3 variable hops apart
        assert rule_radius(knowledge_graph_rules()) == 3

    def test_radius_is_at_least_one(self):
        rules = RuleSet([
            (conflict_rule("self-loop")
             .node("u", "User")
             .edge("u", "u", "follows", variable="e")
             .delete_edge(edge_variable="e")
             .build())
        ])
        assert rule_radius(rules) >= 1


class TestPartitionGraph:
    def _plan(self, workload, shards=3, radius=2):
        return partition_graph(workload.dirty, shards, radius)

    def test_cores_partition_the_node_set(self, small_kg_workload):
        plan = self._plan(small_kg_workload)
        all_nodes = set(small_kg_workload.dirty.node_ids())
        covered: set[str] = set()
        for shard in plan.shards:
            assert not (shard.core & covered), "cores must be disjoint"
            covered |= shard.core
        assert covered == all_nodes

    def test_halo_is_radius_neighborhood_outside_core(self, small_kg_workload):
        graph = small_kg_workload.dirty
        plan = self._plan(small_kg_workload, radius=2)
        for shard in plan.shards:
            expected = graph.neighborhood(shard.core, hops=2) - shard.core
            assert shard.halo == expected
            assert not (shard.halo & shard.core)

    def test_frontier_nodes_have_an_external_neighbour(self, small_kg_workload):
        graph = small_kg_workload.dirty
        plan = self._plan(small_kg_workload)
        for shard in plan.shards:
            for node_id in shard.frontier:
                assert node_id in shard.core
                assert any(neighbour not in shard.core
                           for neighbour in graph.neighbors(node_id))

    def test_partition_is_deterministic(self, small_kg_workload):
        first = self._plan(small_kg_workload)
        second = self._plan(small_kg_workload)
        for a, b in zip(first.shards, second.shards):
            assert a.core == b.core and a.halo == b.halo

    def test_extract_namespaces_new_ids(self, small_kg_workload):
        plan = self._plan(small_kg_workload)
        shard = plan.shards[0]
        working = shard.extract(small_kg_workload.dirty)
        created = working.add_node("Person", {"name": "new"})
        assert created.id.startswith("s0:")

    def test_single_shard_request(self, small_kg_workload):
        plan = self._plan(small_kg_workload, shards=1)
        assert len(plan) == 1
        assert plan.shards[0].core == set(small_kg_workload.dirty.node_ids())
        assert not plan.shards[0].halo

    def test_invalid_shard_count(self, small_kg_workload):
        with pytest.raises(ValueError):
            partition_graph(small_kg_workload.dirty, 0, 1)


# ---------------------------------------------------------------------------
# worker protocol
# ---------------------------------------------------------------------------


class TestWorkerProtocol:
    def test_payload_round_trip_preserves_graph(self, small_kg_workload):
        graph = small_kg_workload.dirty
        rebuilt = shard_from_payload(shard_payload(graph), "s7")
        assert rebuilt.structurally_equal(graph)
        assert rebuilt.add_node("Person").id.startswith("s7:")

    @pytest.mark.parametrize("rules_factory", [knowledge_graph_rules,
                                               movie_rules, social_rules])
    def test_task_is_picklable(self, rules_factory, small_kg_workload):
        """Spawn-safety: every task component must survive pickling."""
        task = ShardTask(shard_index=0,
                         graph_payload=shard_payload(small_kg_workload.dirty),
                         core=frozenset(small_kg_workload.dirty.node_ids()),
                         namespace="s0",
                         rules=rules_factory(),
                         config=FastRepairConfig())
        clone = pickle.loads(pickle.dumps(task))
        assert clone.namespace == "s0"
        assert clone.rules.names() == rules_factory().names()

    def test_run_shard_task_repairs_owned_violations(self, small_kg_workload):
        workload = small_kg_workload
        task = ShardTask(shard_index=0,
                         graph_payload=shard_payload(workload.dirty),
                         core=frozenset(workload.dirty.node_ids()),
                         namespace="s0",
                         rules=workload.rules,
                         config=FastRepairConfig())
        result = run_shard_task(task)
        assert result.repairs_applied == len(result.repairs) > 0
        assert pickle.loads(pickle.dumps(result)).shard_index == 0

    def test_execute_tasks_preserves_task_order_inline(self, small_kg_workload):
        plan = partition_graph(small_kg_workload.dirty, 3,
                               rule_radius(small_kg_workload.rules))
        tasks = [ShardTask(shard_index=shard.index,
                           graph_payload=shard_payload(
                               shard.extract(small_kg_workload.dirty)),
                           core=frozenset(shard.core),
                           namespace=shard.namespace,
                           rules=small_kg_workload.rules,
                           config=FastRepairConfig())
                 for shard in plan.shards]
        results = execute_tasks(tasks, workers=3, use_processes=False)
        assert [result.shard_index for result in results] == [0, 1, 2]


# ---------------------------------------------------------------------------
# merging and conflicts
# ---------------------------------------------------------------------------


def _recorded_repair(graph: PropertyGraph, mutate, rule_name="r") -> AppliedRepair:
    with recording(graph) as recorder:
        region = mutate(graph)
    return AppliedRepair(rule_name=rule_name, region=frozenset(region),
                         delta=recorder.drain())


class TestDeltaMerger:
    def _two_edge_graph(self):
        graph = PropertyGraph(name="primary")
        a = graph.add_node("X", node_id="a")
        b = graph.add_node("X", node_id="b")
        c = graph.add_node("X", node_id="c")
        graph.add_edge(a.id, b.id, "r", edge_id="ab")
        graph.add_edge(b.id, c.id, "r", edge_id="bc")
        return graph

    def test_disjoint_shard_deltas_all_apply(self):
        primary = self._two_edge_graph()
        copy0 = primary.copy()
        copy1 = primary.copy()
        repair0 = _recorded_repair(copy0, lambda g: (g.remove_edge("ab"),
                                                     ("a", "b"))[1])
        repair1 = _recorded_repair(copy1, lambda g: (g.update_node("c", {"x": 1}),
                                                     ("c",))[1])
        outcome = DeltaMerger(primary).merge([
            ShardResult(shard_index=0, repairs=[repair0]),
            ShardResult(shard_index=1, repairs=[repair1]),
        ])
        assert outcome.accepted == 2 and outcome.rejected == 0
        assert not primary.has_edge("ab")
        assert primary.node("c").properties == {"x": 1}

    def test_cross_shard_conflict_is_rejected_with_shard_suffix(self):
        primary = self._two_edge_graph()
        copy0 = primary.copy()
        copy1 = primary.copy()
        # both shards touch node b: shard 0 wins, shard 1's repair (and its
        # whole remaining list) defers to the coordinator
        repair0 = _recorded_repair(copy0, lambda g: (g.remove_edge("ab"),
                                                     ("a", "b"))[1])
        repair1 = _recorded_repair(copy1, lambda g: (g.remove_edge("bc"),
                                                     ("b", "c"))[1])
        follow1 = _recorded_repair(copy1, lambda g: (g.update_node("c", {"x": 1}),
                                                     ("c",))[1])
        outcome = DeltaMerger(primary).merge([
            ShardResult(shard_index=0, repairs=[repair0]),
            ShardResult(shard_index=1, repairs=[repair1, follow1]),
        ])
        assert outcome.accepted == 1
        assert outcome.rejected == 2
        assert len(outcome.conflicts) == 1
        assert primary.has_edge("bc"), "conflicting repair must not land"

    def test_created_ids_are_rebased_onto_primary_reservations(self):
        primary = self._two_edge_graph()
        shard_copy = primary.subgraph(["a", "b"], id_namespace="s0")

        def mutate(graph):
            graph.add_edge("a", "b", "extra")
            return ("a", "b")

        repair = _recorded_repair(shard_copy, mutate)
        created = repair.delta.created_edge_ids
        assert all(edge_id.startswith("s0:") for edge_id in created)
        outcome = DeltaMerger(primary).merge(
            [ShardResult(shard_index=0, repairs=[repair])])
        assert outcome.accepted == 1
        landed = primary.edges_between("a", "b", "extra")
        assert len(landed) == 1
        assert not landed[0].id.startswith("s0:"), \
            "merged edge must carry a primary-reserved id"

    def test_failed_replay_rolls_back_partial_changes(self):
        """A repair whose delta fails mid-replay must leave no trace: the
        already-applied prefix is inverse-applied, so the graph never holds
        changes the maintenance pass will not cover."""
        primary = self._two_edge_graph()
        shard_copy = primary.subgraph(["a", "b"], id_namespace="s0")

        def mutate(graph):
            graph.add_edge("a", "b", "extra")
            graph.remove_edge("ab")
            return ("a", "b")

        repair = _recorded_repair(shard_copy, mutate)
        # sabotage the second change: make it remove an edge the primary
        # does not have (simulates preconditions consumed elsewhere)
        primary.remove_edge("ab")
        before_edges = set(primary.edge_ids())
        outcome = DeltaMerger(primary).merge(
            [ShardResult(shard_index=0, repairs=[repair])])
        assert outcome.accepted == 0 and outcome.rejected == 1
        assert "replay failed" in outcome.conflicts[0]
        assert set(primary.edge_ids()) == before_edges, \
            "the partially replayed ADD_EDGE must have been rolled back"
        assert not outcome.applied_delta

    def test_chained_reference_to_earlier_repair_creation(self):
        """A later repair of the same shard may delete an element an earlier
        repair created; the merger must chain the id across the rebase."""
        primary = self._two_edge_graph()
        shard_copy = primary.subgraph(["a", "b", "c"], id_namespace="s0")
        first = _recorded_repair(
            shard_copy, lambda g: (g.add_edge("a", "b", "extra"), ("a", "b"))[1])
        created_id = first.delta.created_edge_ids[0]
        second = _recorded_repair(
            shard_copy, lambda g: (g.remove_edge(created_id), ("a", "b"))[1])
        outcome = DeltaMerger(primary).merge(
            [ShardResult(shard_index=0, repairs=[first, second])])
        assert outcome.accepted == 2
        assert not primary.edges_between("a", "b", "extra")


# ---------------------------------------------------------------------------
# the sharded backend: registry, degradation, fan-out accounting
# ---------------------------------------------------------------------------


class TestShardedBackend:
    def test_registered_and_buildable(self):
        assert "sharded" in available_backends()
        backend = build_backend(RepairConfig.sharded(workers=2))
        assert isinstance(backend, ShardedRepairer)
        assert backend.name == "sharded"

    def test_sharded_preset(self):
        config = RepairConfig.sharded(workers=6)
        assert config.backend == "sharded" and config.workers == 6

    def test_degrades_to_plain_fast_drain_with_one_worker(self, small_kg_workload):
        """workers=1 must skip the fan-out entirely and match the fast
        backend exactly — the graceful-degradation contract."""
        workload = small_kg_workload
        reference = workload.dirty.copy()
        with RepairSession(reference, workload.rules,
                           config=RepairConfig.fast()) as session:
            ref_report = session.repair()

        repaired = workload.dirty.copy()
        with RepairSession(repaired, workload.rules,
                           config=RepairConfig.sharded(workers=1)) as session:
            report = session.repair()
            assert not session.backend.last_fanout.ran
        assert repaired.structurally_equal(reference)
        assert report.repairs_applied == ref_report.repairs_applied
        assert report.remaining_violations == ref_report.remaining_violations

    def test_small_graphs_skip_the_fanout(self, small_kg_workload):
        workload = small_kg_workload
        repaired = workload.dirty.copy()
        config = RepairConfig.sharded(workers=4, parallel_inline=True,
                                      min_partition_nodes=10_000)
        with RepairSession(repaired, workload.rules, config=config) as session:
            report = session.repair()
            assert not session.backend.last_fanout.ran
        assert report.reached_fixpoint

    def test_fanout_accounting(self, small_kg_workload):
        workload = small_kg_workload
        repaired = workload.dirty.copy()
        config = RepairConfig.sharded(workers=2, parallel_inline=True,
                                      min_partition_nodes=1)
        with RepairSession(repaired, workload.rules, config=config) as session:
            report = session.repair()
            fanout = session.backend.last_fanout
        assert fanout.ran and fanout.shards == 2
        assert fanout.accepted + fanout.rejected == fanout.shard_repairs
        assert len(fanout.conflicts) <= fanout.rejected
        assert report.reached_fixpoint

    def test_max_repairs_budget_disables_fanout_and_stays_exact(self, small_kg_workload):
        """A shared cap must not be multiplied across worker drains: with
        max_repairs set the backend degrades to the sequential drain and the
        cap binds exactly."""
        workload = small_kg_workload
        repaired = workload.dirty.copy()
        config = RepairConfig.sharded(workers=4, parallel_inline=True,
                                      min_partition_nodes=1, max_repairs=3)
        with RepairSession(repaired, workload.rules, config=config) as session:
            report = session.repair()
            assert not session.backend.last_fanout.ran
        assert report.repairs_applied == 3

    def test_events_fire_once_per_counted_repair(self, small_kg_workload):
        """Merged worker repairs must stream through on_repair_applied like
        coordinator repairs do — one event per counted repair — and must not
        inflate repairs_obsolete (their identities are retired, not popped)."""
        from repro.api import SessionEvents

        workload = small_kg_workload
        reference = workload.dirty.copy()
        with RepairSession(reference, workload.rules,
                           config=RepairConfig.fast()) as session:
            ref_obsolete = session.repair().repairs_obsolete

        seen = []
        events = SessionEvents(
            on_repair_applied=lambda violation, outcome: seen.append(
                (violation.rule.name, outcome.applied)))
        repaired = workload.dirty.copy()
        config = RepairConfig.sharded(workers=2, parallel_inline=True,
                                      min_partition_nodes=1)
        with RepairSession(repaired, workload.rules, config=config,
                           events=events) as session:
            report = session.repair()
            fanout = session.backend.last_fanout
        assert fanout.ran and fanout.accepted > 0
        assert len(seen) == report.repairs_applied
        assert all(applied for _, applied in seen)
        assert report.repairs_obsolete == ref_obsolete

    def test_session_reuse_after_fanout(self, small_kg_workload):
        """A second repair() on a settled sharded session is a no-op, and a
        committed edit that re-creates work is repaired incrementally."""
        workload = small_kg_workload
        repaired = workload.dirty.copy()
        config = RepairConfig.sharded(workers=2, parallel_inline=True,
                                      min_partition_nodes=1)
        with RepairSession(repaired, workload.rules, config=config) as session:
            first = session.repair()
            assert first.reached_fixpoint
            again = session.repair()
            assert again.reached_fixpoint
            assert again.repairs_applied == first.repairs_applied


# ---------------------------------------------------------------------------
# batch independence of the fast core (satellite: property-based coverage)
# ---------------------------------------------------------------------------


_DUMMY_RULE = (conflict_rule("probe-rule")
               .node("u", "User")
               .edge("u", "u", "follows", variable="e")
               .delete_edge(edge_variable="e")
               .build())


def _violation(node_ids: tuple[str, ...], index: int) -> Violation:
    bindings = {f"v{i}": node_id for i, node_id in enumerate(node_ids)}
    pattern = Pattern(
        nodes=[PatternNode(f"v{i}") for i in range(len(node_ids))],
        edges=[PatternEdge(f"v{i}", f"v{i + 1}")
               for i in range(len(node_ids) - 1)],  # path: keeps it connected
        name=f"probe{index}")
    return Violation(rule=_DUMMY_RULE,
                     match=Match(pattern=pattern, node_bindings=bindings))


@st.composite
def _regions(draw):
    universe = [f"n{i}" for i in range(12)]
    count = draw(st.integers(min_value=1, max_value=14))
    regions = []
    for _ in range(count):
        size = draw(st.integers(min_value=1, max_value=3))
        indexes = draw(st.lists(st.integers(min_value=0, max_value=11),
                                min_size=size, max_size=size, unique=True))
        regions.append(tuple(universe[i] for i in indexes))
    return regions


class TestPopIndependentBatch:
    def _core_with_queue(self, regions, max_batch=None) -> FastRepairCore:
        graph = PropertyGraph(name="probe")
        core = FastRepairCore(graph, RuleSet([], name="empty"),
                              config=FastRepairConfig(batch_repairs=True,
                                                      max_batch=max_batch))
        for index, region in enumerate(regions):
            core.push(_violation(region, index))
        return core

    @settings(max_examples=60, deadline=None)
    @given(regions=_regions())
    def test_batches_are_pairwise_region_disjoint(self, regions):
        core = self._core_with_queue(regions)
        popped_total = 0
        while core.has_pending():
            batch = core._pop_independent_batch()
            if not batch:
                break
            popped_total += len(batch)
            bound = [entry[2].match.bound_node_ids() for entry in batch]
            for i in range(len(bound)):
                for j in range(i + 1, len(bound)):
                    assert not (bound[i] & bound[j]), \
                        "a batch must never contain region-overlapping violations"
            # deferred entries were restored: mark this batch processed so
            # the loop advances like the real drain does
            for entry in batch:
                core._processed_keys.add(entry[2].key())
        assert popped_total == len(regions), \
            "every queued violation must eventually be popped exactly once"

    @settings(max_examples=25, deadline=None)
    @given(regions=_regions(), max_batch=st.integers(min_value=1, max_value=4))
    def test_max_batch_is_respected(self, regions, max_batch):
        core = self._core_with_queue(regions, max_batch=max_batch)
        while core.has_pending():
            batch = core._pop_independent_batch()
            if not batch:
                break
            assert len(batch) <= max_batch
            for entry in batch:
                core._processed_keys.add(entry[2].key())
