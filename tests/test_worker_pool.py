"""The persistent worker pool: lifecycle, hygiene, and warm equivalence.

Covers the three warm-pool guarantees the service stack relies on:

* **warm == sequential** — a session on the warm sharded backend, driven
  through repair / commit / repair rounds, produces a graph element-for-
  element equal to the sequential fast backend's (the PR-3 equivalence
  standard), with worker detection running incrementally off shipped deltas;
* **no spawns after warm-up** — worker processes are created once; later
  repair calls bind nothing and spawn nothing (the overhead the ``service-kg``
  benchmark tracks);
* **clean failure** — a failing worker (bad payload, dead process) raises
  :class:`~repro.exceptions.WorkerPoolError` *after* the pool shut itself
  down: no orphaned processes, ever, including when a repair raises
  mid-fan-out.
"""

from __future__ import annotations

import multiprocessing
import random
import time

import pytest

from repro.api import RepairConfig, RepairSession
from repro.exceptions import WorkerPoolError
from repro.graph.delta import GraphDelta, recording
from repro.parallel.pool import PoolStats, WorkerPool
from repro.parallel.worker import shard_payload

WORKLOAD_FIXTURES = ("small_kg_workload", "small_movie_workload",
                     "small_social_workload")


@pytest.fixture(params=WORKLOAD_FIXTURES)
def workload(request):
    return request.getfixturevalue(request.param)


def _warm_config(workers: int = 2, **overrides) -> RepairConfig:
    return RepairConfig.sharded(workers=workers, warm=True,
                                parallel_inline=True,
                                min_partition_nodes=1, **overrides)


def _corrupt(graph, seed: int) -> None:
    """Deterministic violation-producing edits (deletions + duplicates)."""
    rng = random.Random(seed)
    edge_ids = graph.edge_ids()
    for edge_id in rng.sample(edge_ids, min(6, len(edge_ids))):
        if graph.has_edge(edge_id):
            graph.remove_edge(edge_id)
    edge_ids = graph.edge_ids()
    for edge_id in rng.sample(edge_ids, min(4, len(edge_ids))):
        edge = graph.edge(edge_id)
        graph.add_edge(edge.source, edge.target, edge.label,
                       dict(edge.properties))


def _drive(session) -> list[int]:
    """repair → (corrupt → repair) × 2; returns the repair counts."""
    counts = [session.repair().repairs_applied]
    for round_seed in (11, 12):
        session.apply(lambda g: _corrupt(g, round_seed))
        counts.append(session.repair().repairs_applied)
    return counts


def _no_pool_children() -> bool:
    """True when no repro pool worker process is left alive."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        alive = [p for p in multiprocessing.active_children()
                 if p.name.startswith("repro-pool-worker")]
        if not alive:
            return True
        time.sleep(0.05)
    return False


class TestWarmEqualsSequential:
    def test_multi_round_equivalence(self, workload):
        reference = workload.dirty.copy(name="reference")
        with RepairSession(reference, workload.rules,
                           config=RepairConfig.fast()) as session:
            reference_counts = _drive(session)

        warm = workload.dirty.copy(name="warm")
        with RepairSession(warm, workload.rules,
                           config=_warm_config(workers=2)) as session:
            warm_counts = _drive(session)
            stats = session.backend.pool.stats

        assert warm_counts == reference_counts
        assert warm.structurally_equal(reference)
        # detection went incremental: later rounds shipped deltas instead of
        # re-binding full payloads for every shard every round
        assert stats.repair_calls >= 2
        assert stats.deltas_shipped > 0

    def test_replicas_survive_across_calls_without_rebind(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="warm-rebind")
        with RepairSession(graph, small_kg_workload.rules,
                           config=_warm_config(workers=2)) as session:
            session.repair()
            stats = session.backend.pool.stats
            binds_after_first = stats.binds
            session.apply(lambda g: _corrupt(g, 21))
            session.repair()
            # intra-shard edits ship as deltas; only boundary-crossing
            # changes may rebind, so binds must not grow per shard per call
            assert stats.binds <= binds_after_first \
                + session.backend.last_fanout.stale_rebinds

    def test_shared_pool_between_two_backends(self, small_kg_workload,
                                              small_movie_workload):
        with WorkerPool(workers=2, inline=True) as pool:
            graphs = []
            for workload, name in ((small_kg_workload, "kg"),
                                   (small_movie_workload, "movies")):
                repaired = workload.dirty.copy(name=name)
                with RepairSession(repaired, workload.rules,
                                   config=_warm_config(workers=2),
                                   pool=pool) as session:
                    session.repair()
                reference = workload.dirty.copy(name=f"{name}-ref")
                with RepairSession(reference, workload.rules,
                                   config=RepairConfig.fast()) as session:
                    session.repair()
                assert repaired.structurally_equal(reference)
                graphs.append(repaired)
            # both tenants' shards lived in the one pool, keyed apart
            assert pool.stats.binds >= 4


class TestSpawnPool:
    def test_warm_spawns_once_and_closes_clean(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="spawned")
        config = RepairConfig.sharded(workers=2, warm=True,
                                      min_partition_nodes=1)
        session = RepairSession(graph, small_kg_workload.rules, config=config)
        try:
            counts = _drive(session)
            stats = session.backend.pool.stats
            # processes were spawned exactly once, at the first repair call;
            # the later calls (after warm-up) spawned nothing
            assert stats.spawns == 2
            assert stats.repair_calls >= 2
            assert session.backend.last_fanout.pool_spawns == 0
        finally:
            session.close()
        assert _no_pool_children()

        reference = small_kg_workload.dirty.copy(name="spawn-ref")
        with RepairSession(reference, small_kg_workload.rules,
                           config=RepairConfig.fast()) as ref_session:
            reference_counts = _drive(ref_session)
        assert counts == reference_counts
        assert graph.structurally_equal(reference)

    def test_failing_worker_shuts_pool_down(self, small_kg_workload):
        pool = WorkerPool(workers=2)
        with pytest.raises(WorkerPoolError):
            # a payload the worker cannot rebuild a graph from
            pool.bind("bad", {"garbage": True}, "s0", frozenset(),
                      small_kg_workload.rules,
                      RepairConfig.fast().to_fast_config())
        assert pool.closed
        assert _no_pool_children()
        # the pool is reopenable (failure recovery), but work against the
        # never-successfully-bound key still fails loudly — and cleans up
        with pytest.raises(WorkerPoolError):
            pool.repair(["bad"])
        assert pool.closed
        assert _no_pool_children()


class TestFailureRecovery:
    def test_warm_session_recovers_after_pool_shutdown(self, small_kg_workload):
        """A pool another tenant's failure closed is reopened at the next
        fan-out (fresh generation), and every replica rebinds — the session
        keeps working and stays equivalent."""
        reference = small_kg_workload.dirty.copy(name="ref")
        with RepairSession(reference, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            reference_counts = _drive(session)

        graph = small_kg_workload.dirty.copy(name="recover")
        with RepairSession(graph, small_kg_workload.rules,
                           config=_warm_config(workers=2)) as session:
            counts = [session.repair().repairs_applied]
            pool = session.backend.pool
            generation = pool.generation
            pool.close()  # simulate a shared-pool failure from elsewhere
            for round_seed in (11, 12):
                session.apply(lambda g: _corrupt(g, round_seed))
                counts.append(session.repair().repairs_applied)
            assert pool.generation > generation  # reopened, new generation
        assert counts == reference_counts
        assert graph.structurally_equal(reference)

    def test_halo_invariant_check_catches_shortcut_edges(self,
                                                         small_kg_workload):
        """An added member-member edge that pulls outside structure inside
        the rule radius must mark the shard stale (rebind), never ship."""
        from repro.api.backend import build_backend
        from repro.graph.delta import recording
        from repro.parallel.backend import _ReplicaTracker
        from repro.parallel.replica import project_delta
        from repro.graph.property_graph import PropertyGraph

        chain = PropertyGraph(name="chain")
        nodes = [chain.add_node("Person", {"i": i}).id for i in range(5)]
        for left, right in zip(nodes, nodes[1:]):
            chain.add_edge(left, right, "knows")
        backend = build_backend(_warm_config(workers=2))
        backend.bind(chain, small_kg_workload.rules)
        try:
            # core = first two chain nodes; radius-2 halo covers nodes[2..3],
            # and nodes[4] is correctly outside (3 hops from the core)
            tracker = _ReplicaTracker(
                index=0, namespace="s0", key="k",
                core=set(nodes[:2]), nodes=set(nodes[:4]),
                bound=True, stale=False)
            with recording(chain) as recorder:
                chain.add_edge(nodes[1], nodes[3], "knows")  # shortcut
            projection = project_delta(recorder.drain(), tracker.nodes)
            assert not projection.stale  # both endpoints are members...
            assert not backend._halo_intact(tracker, 2, projection), \
                "nodes[4] is now 2 hops from the core but not a member"
            # a benign member-member edge (no distance change) passes
            with recording(chain) as recorder:
                chain.add_edge(nodes[0], nodes[1], "knows")
            benign = project_delta(recorder.drain(), tracker.nodes)
            assert backend._halo_intact(
                _ReplicaTracker(index=0, namespace="s0", key="k",
                                core=set(nodes[:2]),
                                nodes=set(chain.node_ids()),
                                bound=True, stale=False), 2, benign)
        finally:
            backend.close()


class TestPoolProtocol:
    def test_inline_bind_ship_repair_roundtrip(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="proto")
        rules = small_kg_workload.rules
        config = RepairConfig.fast().to_fast_config()
        with WorkerPool(workers=1, inline=True) as pool:
            pool.bind("whole", shard_payload(graph), "s0",
                      frozenset(graph.node_ids()), rules, config)
            (result,) = pool.repair(["whole"])
            assert result.repairs_applied > 0
            assert len(result.repairs) == result.repairs_applied
            # propose-then-revert: the standing replica still matches the
            # unrepaired payload graph
            replica = pool._inline_states["whole"].graph
            assert replica.structurally_equal(graph)
            # ship a committed delta and observe it on the replica
            with recording(graph) as recorder:
                node = graph.add_node("Person", {"name": "Shipped"})
                graph.add_edge(node.id, graph.node_ids()[0], "knows")
            assert pool.ship("whole", recorder.drain())
            assert replica.structurally_equal(graph)
            assert pool.stats.deltas_shipped == 1

    def test_ship_divergence_reports_stale_not_fatal(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="diverge")
        with WorkerPool(workers=1, inline=True) as pool:
            pool.bind("r", shard_payload(graph), "s0",
                      frozenset(graph.node_ids()),
                      small_kg_workload.rules,
                      RepairConfig.fast().to_fast_config())
            # a delta referencing a node the replica does not have
            scratch = graph.copy()
            ghost = scratch.add_node("Person", {"name": "Ghost"})
            with recording(scratch) as recorder:
                scratch.remove_node(ghost.id)
            assert pool.ship("r", recorder.drain()) is False
            assert not pool.closed  # divergence is recoverable: rebind

    def test_batch_rejects_duplicate_keys(self):
        pool = WorkerPool(workers=1, inline=True)
        with pytest.raises(ValueError):
            pool._dispatch([("repair", "k"), ("repair", "k")])
        pool.close()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_stats_shape(self):
        stats = PoolStats()
        assert set(stats.as_dict()) == {"spawns", "binds", "deltas_shipped",
                                        "shard_repairs", "repair_calls",
                                        "leases", "lease_wait_seconds",
                                        "worker_deaths", "respawns",
                                        "command_timeouts", "retries",
                                        "fallback_repairs"}

    def test_close_escalates_past_wedged_worker(self, small_kg_workload):
        """A worker that ignores the stop sentinel *and* SIGTERM must not
        outlive close() — escalation reaches SIGKILL (the zombie-leak fix)."""
        from repro.testing import Fault, FaultPlan

        plan = FaultPlan(faults=(Fault(site="worker.stop", kind="wedge"),))
        pool = WorkerPool(workers=2, stop_grace=0.25, fault_plan=plan)
        payload = shard_payload(small_kg_workload.dirty)
        pool.bind("k", payload, "s0", frozenset(), small_kg_workload.rules,
                  RepairConfig.fast().to_fast_config())
        pool.close()
        assert pool.closed
        assert _no_pool_children()
