"""Tests for the ``repro.api`` package: RepairSession, RepairConfig, the
Repairer protocol, transactions, batching, events, and the legacy shims."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    CommitResult,
    FastBackend,
    GreedyBackend,
    NaiveBackend,
    RepairConfig,
    Repairer,
    RepairSession,
    SessionEvents,
    available_backends,
    build_backend,
    open_session,
    register_backend,
)
from repro.exceptions import SessionStateError
from repro.graph import ChangeRecorder, GraphDelta, PropertyGraph
from repro.matching.matcher import MatcherConfig
from repro.repair import (
    EngineConfig,
    FastRepairConfig,
    FastRepairer,
    NaiveRepairConfig,
    RepairEngine,
    repair_graph,
)
from repro.repair.cost import CostModel
from repro.rules import knowledge_graph_rules


def _exactly_equal(graph: PropertyGraph, other: PropertyGraph) -> bool:
    """Structural equality plus id-for-id equality (rollback is exact)."""
    return (graph.structurally_equal(other)
            and sorted(graph.node_ids()) == sorted(other.node_ids())
            and sorted(graph.edge_ids()) == sorted(other.edge_ids()))


def _clustered_kg(clusters: int = 4) -> PropertyGraph:
    """A KG whose violations live in ``2 * clusters`` mutually disjoint regions.

    Each cluster contributes one incompleteness violation (a person with a
    missing nationality, in its own country/city neighbourhood) and one
    redundancy violation (a duplicated ``livesIn`` edge around a *different*
    city) — no two violation matches share a node, so every repair is
    batchable with every other.
    """
    graph = PropertyGraph(name="clustered-kg")
    for i in range(clusters):
        country = graph.add_node("Country", {"name": f"Country{i}"})
        city = graph.add_node("City", {"name": f"City{i}"})
        graph.add_edge(city.id, country.id, "inCountry", {"confidence": 1.0})
        incomplete = graph.add_node("Person", {"name": f"NoNat{i}"})
        graph.add_edge(incomplete.id, city.id, "bornIn", {"confidence": 1.0})
        other_city = graph.add_node("City", {"name": f"Suburb{i}"})
        dweller = graph.add_node("Person", {"name": f"Dweller{i}"})
        graph.add_edge(dweller.id, other_city.id, "livesIn", {"confidence": 1.0})
        graph.add_edge(dweller.id, other_city.id, "livesIn", {"confidence": 1.0})
    return graph


# ---------------------------------------------------------------------------
# Repairer protocol and backend registry
# ---------------------------------------------------------------------------


class TestRepairerProtocol:
    @pytest.mark.parametrize("factory,config", [
        (FastBackend, RepairConfig.fast()),
        (NaiveBackend, RepairConfig.naive()),
        (GreedyBackend, RepairConfig.baseline()),
    ])
    def test_backends_satisfy_the_protocol(self, factory, config):
        backend = factory(config)
        assert isinstance(backend, Repairer)

    def test_build_backend_by_name(self):
        assert isinstance(build_backend(RepairConfig.fast()), FastBackend)
        assert isinstance(build_backend(RepairConfig.naive()), NaiveBackend)
        assert isinstance(build_backend(RepairConfig.baseline()), GreedyBackend)

    def test_fast_without_incremental_degrades_to_naive(self):
        config = RepairConfig.fast(use_incremental=False)
        assert isinstance(build_backend(config), NaiveBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown repair method"):
            build_backend(RepairConfig.fast(backend="quantum"))

    def test_custom_backend_registration(self):
        class EchoBackend(NaiveBackend):
            name = "echo"

        register_backend("echo", EchoBackend)
        try:
            backend = build_backend(RepairConfig.fast(backend="echo"))
            assert isinstance(backend, EchoBackend)
            assert "echo" in available_backends()
        finally:
            from repro.api.backend import _BACKENDS

            _BACKENDS.pop("echo", None)

    def test_lifecycle_methods_work_standalone(self, tiny_kg, kg_rules):
        """plan/apply/maintain compose into a hand-rolled repair loop."""
        graph = tiny_kg.copy()
        backend = build_backend(RepairConfig.fast())
        backend.bind(graph, kg_rules)
        pending = backend.plan()
        assert pending
        outcome = backend.apply(pending[0])
        assert outcome.applied and outcome.delta
        event = backend.maintain(outcome.delta, source="commit")
        assert event.passes == 1
        backend.close()


# ---------------------------------------------------------------------------
# RepairConfig presets, builder, and the legacy-shim field mapping
# ---------------------------------------------------------------------------


class TestRepairConfig:
    def test_presets(self):
        fast = RepairConfig.fast()
        assert fast.backend == "fast" and fast.use_incremental
        naive = RepairConfig.naive()
        assert naive.backend == "naive" and not naive.use_candidate_index
        baseline = RepairConfig.baseline()
        assert baseline.backend == "greedy"

    def test_builder_chain(self):
        config = (RepairConfig.fast()
                  .batched(max_batch=8)
                  .with_budget(max_repairs=10, max_rounds=5)
                  .with_cost_model(CostModel(add_edge=2.0))
                  .with_options(check_consistency=True))
        assert config.batch_repairs and config.max_batch == 8
        assert config.max_repairs == 10 and config.max_rounds == 5
        assert config.cost_model.add_edge == 2.0
        assert config.check_consistency
        # builder steps return copies, the preset is untouched
        assert not RepairConfig.fast().batch_repairs

    def test_ablation_matches_engine_semantics(self):
        assert RepairConfig.ablation("incremental").backend == "naive"
        assert not RepairConfig.ablation("index").use_candidate_index
        with pytest.raises(ValueError):
            RepairConfig.ablation("warp-drive")


def _perturb(value, field_type: str):
    """A value guaranteed to differ from the field's default."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, CostModel):
        return CostModel(add_node=9.0, delete_edge=4.0)
    if isinstance(value, MatcherConfig):
        return MatcherConfig(use_candidate_index=not value.use_candidate_index,
                             use_decomposition=not value.use_decomposition,
                             match_limit=23, time_budget=1.5)
    if isinstance(value, str):
        return "naive" if value == "fast" else "fast"
    if value is None:
        return 1.25 if "float" in field_type else 17
    if isinstance(value, int):
        return value + 13
    raise AssertionError(f"no perturbation rule for {value!r}")  # pragma: no cover


def _perturbed_instance(config_cls):
    """An instance of ``config_cls`` with every field set to a non-default."""
    defaults = config_cls()
    overrides = {
        field.name: _perturb(getattr(defaults, field.name), str(field.type))
        for field in dataclasses.fields(config_cls)
    }
    return config_cls(**overrides)


class TestLegacyConfigShims:
    """Regression: the RepairConfig shims must map every legacy field.

    Each legacy config is built with *every* field perturbed away from its
    default; converting to RepairConfig and back must reproduce it exactly.
    A field added to a legacy config without a mapping makes this fail.
    """

    def test_engine_config_round_trips(self):
        original = _perturbed_instance(EngineConfig)
        assert RepairConfig.from_engine_config(original).to_engine_config() \
            == original

    def test_fast_config_round_trips(self):
        original = _perturbed_instance(FastRepairConfig)
        assert RepairConfig.from_fast_config(original).to_fast_config() \
            == original

    def test_naive_config_round_trips(self):
        original = _perturbed_instance(NaiveRepairConfig)
        assert RepairConfig.from_naive_config(original).to_naive_config() \
            == original

    def test_matcher_config_round_trips(self):
        original = _perturbed_instance(MatcherConfig)
        assert RepairConfig.from_matcher_config(original).to_matcher_config() \
            == original

    def test_from_legacy_dispatches(self):
        assert RepairConfig.from_legacy(EngineConfig.naive()).backend == "naive"
        assert RepairConfig.from_legacy(FastRepairConfig()).backend == "fast"
        config = RepairConfig.fast()
        assert RepairConfig.from_legacy(config) is config
        with pytest.raises(TypeError):
            RepairConfig.from_legacy(object())

    def test_shared_knobs_are_declared_once(self):
        """The cost/ordering knobs live on the shared base, not re-declared."""
        from repro.repair.config import RepairKnobs

        for config_cls in (EngineConfig, FastRepairConfig, NaiveRepairConfig,
                           RepairConfig):
            assert issubclass(config_cls, RepairKnobs)


# ---------------------------------------------------------------------------
# Session transactions
# ---------------------------------------------------------------------------


class TestSessionTransactions:
    def test_stage_then_commit_feeds_the_queue(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            session.repair()
            assert session.violations() == []

            # a new person born in Paris without a nationality: one new
            # incompleteness violation once committed
            def edit(g):
                dave = g.add_node("Person", {"name": "Dave"})
                g.add_edge(dave.id, "n2", "bornIn", {"confidence": 1.0})

            delta = session.stage(edit)
            assert len(delta) == 2 and session.staged == 1
            result = session.commit()
            assert isinstance(result, CommitResult)
            assert result.maintenance.passes == 1
            assert result.discovered == 1
            assert session.staged == 0
            assert len(session.violations()) == 1

            report = session.repair()
            assert report.reached_fixpoint
            assert session.violations() == []

    def test_transaction_context_manager_stages(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            session.repair()
            with session.transaction() as g:
                eve = g.add_node("Person", {"name": "Eve"})
                g.add_edge(eve.id, "n2", "bornIn", {"confidence": 1.0})
            assert session.staged == 1
            assert session.commit().discovered == 1

    def test_rollback_restores_pre_stage_graph_exactly(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            session.repair()
            snapshot = graph.copy()
            pending_before = [v.key() for v in session.violations()]

            def messy_edit(g):
                extra = g.add_node("Person", {"name": "Mallory"})
                g.add_edge(extra.id, "n2", "bornIn", {"confidence": 1.0})
                g.remove_edge("e0")
                g.update_node("n0", {"name": "Francia"})
                g.merge_nodes("n2", "n3")

            session.stage(messy_edit)
            assert not graph.structurally_equal(snapshot)
            session.rollback()
            assert _exactly_equal(graph, snapshot)
            assert session.staged == 0
            # matcher state never saw the staged edits
            assert [v.key() for v in session.violations()] == pending_before
            # and the session is still fully functional
            assert session.repair().reached_fixpoint

    def test_failed_transaction_is_undone(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            snapshot = graph.copy()
            with pytest.raises(RuntimeError, match="boom"):
                with session.transaction() as g:
                    g.add_node("Person", {"name": "Ghost"})
                    raise RuntimeError("boom")
            assert _exactly_equal(graph, snapshot)
            assert session.staged == 0

    def test_failed_stage_callable_is_undone(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            snapshot = graph.copy()

            def exploding(g):
                g.add_node("Person", {"name": "Ghost"})
                raise RuntimeError("boom")

            with pytest.raises(RuntimeError, match="boom"):
                session.stage(exploding)
            assert _exactly_equal(graph, snapshot)
            assert session.staged == 0

    def test_transactions_do_not_nest(self, tiny_kg, kg_rules):
        """Overlapping recorders would double-record inner edits; nested
        entry must be rejected and the outer transaction stay intact."""
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            snapshot = graph.copy()
            with session.transaction() as g:
                g.add_node("Person", {"name": "Outer"})
                with pytest.raises(SessionStateError, match="nest"):
                    session.stage(lambda gg: gg.add_node("Person",
                                                         {"name": "Inner"}))
                with pytest.raises(SessionStateError, match="nest"):
                    with session.transaction():
                        pass
            assert session.staged == 1
            session.rollback()
            assert _exactly_equal(graph, snapshot)
            # the guard resets: a fresh transaction works
            session.stage(lambda gg: gg.add_node("Person", {"name": "Again"}))
            session.rollback()
            assert _exactly_equal(graph, snapshot)

    def test_mutating_operations_illegal_mid_transaction(self, tiny_kg, kg_rules):
        """repair/commit/rollback inside an open transaction would bypass the
        staged-edits invariant (the live recorder would capture their
        mutations as user edits); all three must be rejected."""
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            snapshot = graph.copy()
            with session.transaction() as g:
                g.add_node("Person", {"name": "MidTxn"})
                for operation in (session.repair, session.commit,
                                  session.rollback):
                    with pytest.raises(SessionStateError, match="transaction"):
                        operation()
            session.rollback()
            assert _exactly_equal(graph, snapshot)

    def test_repair_refuses_uncommitted_stage(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            session.stage(lambda g: g.add_node("Person", {"name": "Zoe"}))
            with pytest.raises(SessionStateError, match="staged"):
                session.repair()
            session.rollback()
            session.repair()

    def test_stage_accepts_recorded_delta(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            session.repair()
            # record an edit on a replica of the session's graph state, then
            # stage the recorded delta for real (ids replay verbatim, so the
            # delta must come from the same state)
            scratch = graph.copy()
            recorder = ChangeRecorder()
            scratch.add_listener(recorder)
            walt = scratch.add_node("Person", {"name": "Walt"})
            scratch.add_edge(walt.id, "n2", "bornIn", {"confidence": 1.0})
            recorded = recorder.drain()

            session.stage(recorded)
            assert session.commit().discovered == 1
            assert graph.has_node(walt.id)

    def test_empty_commit_and_rollback_are_noops(self, tiny_kg, kg_rules):
        with RepairSession(tiny_kg.copy(), kg_rules) as session:
            assert session.commit().maintenance.passes == 0
            assert not session.rollback()

    def test_closed_session_rejects_operations(self, tiny_kg, kg_rules):
        session = RepairSession(tiny_kg.copy(), kg_rules)
        session.close()
        assert session.closed
        with pytest.raises(SessionStateError, match="closed"):
            session.repair()
        with pytest.raises(SessionStateError, match="closed"):
            session.stage(lambda g: None)
        session.close()  # idempotent

    def test_committed_edit_can_recreate_a_repaired_violation(self, tiny_kg,
                                                              kg_rules):
        """A violation identity repaired once must become repairable again
        when an external (committed) edit re-introduces it."""
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            first = session.repair()
            assert first.reached_fixpoint
            # undo one of the incompleteness repairs: delete the nationality
            # edges the session just added, recreating the original violations
            added = [edge.id for edge in graph.edges()
                     if edge.label == "nationality" and not edge.properties]
            assert added, "expected repair-added nationality edges"
            result = session.apply(
                lambda g: [g.remove_edge(edge_id) for edge_id in added])
            assert result.discovered == len(added)
            report = session.repair()
            assert report.reached_fixpoint
            assert report.remaining_violations == 0

    def test_stage_of_inapplicable_delta_is_fully_undone(self, tiny_kg, kg_rules):
        """A delta that fails mid-replay must leave no partial edits behind."""
        scratch = tiny_kg.copy()
        recorder = ChangeRecorder()
        scratch.add_listener(recorder)
        ghost = scratch.add_node("Person", {"name": "Ghost"})
        phantom = scratch.add_node("City", {"name": "Phantom"})
        scratch.add_edge(ghost.id, phantom.id, "bornIn")
        recorded = recorder.drain()
        # sabotage: drop the middle change so the edge's target is unknown
        del recorded.changes[1]

        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            snapshot = graph.copy()
            with pytest.raises(Exception):
                session.stage(recorded)
            assert _exactly_equal(graph, snapshot)
            assert session.staged == 0

    def test_apply_is_stage_plus_commit(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules) as session:
            session.repair()

            def edit(g):
                trent = g.add_node("Person", {"name": "Trent"})
                g.add_edge(trent.id, "n2", "bornIn", {"confidence": 1.0})

            result = session.apply(edit)
            assert result.discovered == 1 and session.staged == 0


# ---------------------------------------------------------------------------
# Batched repairing
# ---------------------------------------------------------------------------


class TestBatchedRepair:
    def test_batched_equals_sequential_on_independent_violations(self, kg_rules):
        dirty = _clustered_kg(clusters=4)

        sequential = dirty.copy()
        with RepairSession(sequential, kg_rules) as session:
            seq_report = session.repair()

        batched = dirty.copy()
        with RepairSession(batched, kg_rules,
                           config=RepairConfig.fast().batched()) as session:
            batch_report = session.repair()

        assert batched.structurally_equal(sequential)
        assert batch_report.repairs_applied == seq_report.repairs_applied
        assert batch_report.reached_fixpoint and seq_report.reached_fixpoint
        # all 8 independent repairs (2 per cluster) fit in one merged pass
        assert seq_report.matching_stats.maintenance_passes == \
            seq_report.repairs_applied
        assert batch_report.matching_stats.maintenance_passes < \
            seq_report.matching_stats.maintenance_passes
        assert batch_report.matching_stats.maintenance_passes == 1

    def test_max_batch_caps_batch_size(self, kg_rules):
        dirty = _clustered_kg(clusters=4)
        with RepairSession(dirty, kg_rules,
                           config=RepairConfig.fast().batched(max_batch=2)) as session:
            report = session.repair()
        assert report.reached_fixpoint
        passes = report.matching_stats.maintenance_passes
        assert 1 < passes < report.repairs_applied

    def test_batched_handles_overlapping_violations(self, tiny_kg, kg_rules):
        """tiny_kg's violations overlap heavily; batching must still converge
        to the same fixpoint as the sequential drain."""
        sequential = tiny_kg.copy()
        seq_report = FastRepairer().repair(sequential, kg_rules)

        batched = tiny_kg.copy()
        events = []
        with RepairSession(batched, kg_rules,
                           config=RepairConfig.fast().batched(),
                           events=SessionEvents(on_violation=events.append)) as session:
            report = session.repair()
        assert report.reached_fixpoint
        assert batched.structurally_equal(sequential)
        # deferring region-conflicting entries to a later batch must not
        # re-count them as new detections or re-fire on_violation
        assert report.violations_detected == seq_report.violations_detected
        assert len(events) == report.violations_detected


# ---------------------------------------------------------------------------
# Event hooks
# ---------------------------------------------------------------------------


class TestSessionEvents:
    def test_hooks_stream_progress(self, tiny_kg, kg_rules):
        seen_violations, applied, maintenance = [], [], []
        events = SessionEvents(
            on_violation=seen_violations.append,
            on_repair_applied=lambda violation, outcome: applied.append(
                (violation, outcome)),
            on_maintenance=maintenance.append,
        )
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules, events=events) as session:
            report = session.repair()

        assert len(seen_violations) == report.violations_detected
        assert len(applied) == report.repairs_applied
        assert all(outcome.applied for _violation, outcome in applied)
        repair_passes = [e for e in maintenance if e.source == "repair"]
        assert len(repair_passes) == report.matching_stats.maintenance_passes

    def test_commit_fires_maintenance_event(self, tiny_kg, kg_rules):
        maintenance = []
        events = SessionEvents(on_maintenance=maintenance.append)
        graph = tiny_kg.copy()
        with RepairSession(graph, kg_rules, events=events) as session:
            session.repair()
            maintenance.clear()
            session.apply(lambda g: g.add_node("Person", {"name": "Nat"}))
        assert [e.source for e in maintenance] == ["commit"]

    def test_batched_maintenance_events(self, kg_rules):
        maintenance = []
        events = SessionEvents(on_maintenance=maintenance.append)
        with RepairSession(_clustered_kg(3), kg_rules,
                           config=RepairConfig.fast().batched(),
                           events=events) as session:
            session.repair()
        assert [e.source for e in maintenance] == ["repair-batch"]


# ---------------------------------------------------------------------------
# open_session and the deprecation shims
# ---------------------------------------------------------------------------


class TestEntryPoints:
    def test_open_session_presets(self, tiny_kg, kg_rules):
        with open_session(tiny_kg.copy(), kg_rules, "fast",
                          max_repairs=3) as session:
            assert session.config.backend == "fast"
            assert session.config.max_repairs == 3
            report = session.repair()
            assert report.repairs_applied == 3
        with pytest.raises(ValueError, match="unknown backend"):
            open_session(tiny_kg.copy(), kg_rules, "quantum")

    def test_max_repairs_budgets_each_repair_call(self, tiny_kg, kg_rules):
        """The budget is per repair() call on every backend — a session that
        hit the cap once must make progress on its next call."""
        with open_session(tiny_kg.copy(), kg_rules, "fast",
                          max_repairs=2) as session:
            first = session.repair()
            assert first.repairs_applied == 2
            second = session.repair()
            assert second.repairs_applied > 2  # cumulative: later calls add more
            while not session.report.reached_fixpoint:
                session.repair()
            assert session.report.reached_fixpoint

    def test_legacy_entry_points_warn_and_match_session(self, tiny_kg, kg_rules):
        reference = tiny_kg.copy()
        with RepairSession(reference, kg_rules) as session:
            session.repair()

        with pytest.warns(DeprecationWarning, match="repair_graph is deprecated"):
            shimmed, report = repair_graph(tiny_kg, kg_rules, "fast")
        assert shimmed.structurally_equal(reference)
        assert report.reached_fixpoint

        with pytest.warns(DeprecationWarning, match="RepairEngine is deprecated"):
            engine_graph, _ = RepairEngine(EngineConfig.fast()).repair_copy(
                tiny_kg, kg_rules)
        assert engine_graph.structurally_equal(reference)

    def test_session_accepts_plain_rule_list(self, tiny_kg):
        rules = list(knowledge_graph_rules())
        with RepairSession(tiny_kg.copy(), rules) as session:
            assert session.repair().reached_fixpoint
