"""Tests for the canned domain rule libraries and their fit with the datasets."""

from __future__ import annotations

import pytest

from repro.repair import detect_violations
from repro.rules import (
    KG,
    MOVIES,
    RULE_LIBRARIES,
    SOCIAL,
    Semantics,
    knowledge_graph_rules,
    movie_rules,
    rules_for_domain,
    social_rules,
)


ALL_LIBRARIES = [knowledge_graph_rules, movie_rules, social_rules]


class TestLibraryStructure:
    @pytest.mark.parametrize("factory", ALL_LIBRARIES,
                             ids=["kg", "movies", "social"])
    def test_every_library_covers_all_three_semantics(self, factory):
        library = factory()
        semantics = {rule.semantics for rule in library}
        assert semantics == {Semantics.INCOMPLETENESS, Semantics.CONFLICT,
                             Semantics.REDUNDANCY}

    @pytest.mark.parametrize("factory", ALL_LIBRARIES,
                             ids=["kg", "movies", "social"])
    def test_rule_names_are_unique_and_documented(self, factory):
        library = factory()
        names = library.names()
        assert len(names) == len(set(names))
        for rule in library:
            assert rule.description, f"rule {rule.name} lacks a description"
            assert rule.pattern.size() >= 1

    def test_registry_lookup(self):
        assert set(RULE_LIBRARIES) == {"kg", "movies", "social"}
        assert rules_for_domain("kg").name == "kg-rules"
        with pytest.raises(KeyError):
            rules_for_domain("unknown-domain")

    def test_label_constants_are_consistent_with_rules(self):
        kg = knowledge_graph_rules()
        used_edge_labels = set()
        for rule in kg:
            used_edge_labels |= rule.required_edge_labels()
            used_edge_labels |= rule.effects().added_edge_labels
        assert KG["NATIONALITY"] in used_edge_labels
        assert KG["BORN_IN"] in used_edge_labels
        movies = {edge for rule in movie_rules()
                  for edge in rule.required_edge_labels()}
        assert MOVIES["PRODUCED_BY"] in movies
        social = {edge for rule in social_rules()
                  for edge in rule.required_edge_labels()}
        assert SOCIAL["FOLLOWS"] in social


class TestLibraryOnCleanData:
    def test_kg_rules_are_silent_on_clean_kg(self, small_kg_dataset):
        detection = detect_violations(small_kg_dataset.clean, small_kg_dataset.rules)
        assert len(detection) == 0

    def test_movie_rules_are_silent_on_clean_movies(self, small_movie_workload):
        detection = detect_violations(small_movie_workload.clean,
                                      small_movie_workload.rules)
        assert len(detection) == 0

    def test_social_rules_are_silent_on_clean_social(self, small_social_workload):
        detection = detect_violations(small_social_workload.clean,
                                      small_social_workload.rules)
        assert len(detection) == 0


class TestLibraryOnDirtyData:
    def test_kg_rules_detect_each_error_class(self, small_kg_workload):
        detection = detect_violations(small_kg_workload.dirty, small_kg_workload.rules)
        per_semantics = detection.per_semantics()
        assert per_semantics.get("incompleteness", 0) > 0
        assert per_semantics.get("conflict", 0) > 0
        assert per_semantics.get("redundancy", 0) > 0

    def test_tiny_kg_violations_match_handcrafted_expectation(self, tiny_kg, kg_rules):
        detection = detect_violations(tiny_kg, kg_rules)
        per_rule = detection.per_rule()
        # Carol and Ada2 lack a nationality; Bob's nationality contradicts his birthplace;
        # Ada/Ada2 are duplicates (both orientations); Ada has a duplicate livesIn edge.
        assert per_rule["kg-add-nationality"] >= 2
        assert per_rule["kg-nationality-matches-birthplace"] == 1
        assert per_rule["kg-dedup-person"] == 2
        assert per_rule["kg-dedup-lives-in"] == 2
        assert "kg-single-birthplace" not in per_rule
