"""Unit tests for unary predicates and cross-variable comparisons."""

from __future__ import annotations

import pytest

from repro.matching import (
    Comparison,
    ComparisonOp,
    different_value,
    eq,
    exists,
    ge,
    gt,
    le,
    lt,
    missing,
    ne,
    not_one_of,
    one_of,
    same_value,
    value_is,
)


class TestUnaryPredicates:
    def test_exists_and_missing(self):
        assert exists("name").evaluate({"name": "Ada"})
        assert not exists("name").evaluate({})
        assert missing("name").evaluate({})
        assert not missing("name").evaluate({"name": "Ada"})

    def test_equality_and_inequality(self):
        assert eq("age", 3).evaluate({"age": 3})
        assert not eq("age", 3).evaluate({"age": 4})
        assert ne("age", 3).evaluate({"age": 4})
        assert not ne("age", 3).evaluate({})  # missing key -> False

    def test_ordered_comparisons(self):
        properties = {"population": 500}
        assert gt("population", 100).evaluate(properties)
        assert ge("population", 500).evaluate(properties)
        assert lt("population", 1000).evaluate(properties)
        assert le("population", 500).evaluate(properties)
        assert not gt("population", 500).evaluate(properties)

    def test_membership(self):
        assert one_of("color", ["red", "blue"]).evaluate({"color": "red"})
        assert not one_of("color", ["red", "blue"]).evaluate({"color": "green"})
        assert not_one_of("color", ["red"]).evaluate({"color": "green"})

    def test_type_mismatch_is_false_not_error(self):
        assert not gt("age", 10).evaluate({"age": "not a number"})

    def test_describe_is_readable(self):
        assert "has(name)" == exists("name").describe()
        assert "age" in gt("age", 3).describe()


class TestComparisons:
    def lookup_factory(self, values):
        return lambda variable: values.get(variable, {})

    def test_same_and_different_value(self):
        lookup = self.lookup_factory({"a": {"name": "Ada"}, "b": {"name": "Ada"}})
        assert same_value("a", "name", "b").evaluate(lookup)
        assert not different_value("a", "name", "b").evaluate(lookup)

    def test_different_keys_can_be_compared(self):
        lookup = self.lookup_factory({"a": {"nick": "Ada"}, "b": {"name": "Ada"}})
        assert same_value("a", "nick", "b", "name").evaluate(lookup)

    def test_missing_property_fails_comparison(self):
        lookup = self.lookup_factory({"a": {"name": "Ada"}, "b": {}})
        assert not same_value("a", "name", "b").evaluate(lookup)
        assert not different_value("a", "name", "b").evaluate(lookup)

    def test_literal_comparison(self):
        lookup = self.lookup_factory({"a": {"year": 2001}})
        assert value_is("a", "year", 2001).evaluate(lookup)
        assert Comparison(("a", "year"), ComparisonOp.GT, right_value=1999,
                          right_literal=True).evaluate(lookup)

    def test_ordered_comparison_between_variables(self):
        lookup = self.lookup_factory({"e1": {"confidence": 1.0}, "e2": {"confidence": 0.5}})
        comparison = Comparison(("e1", "confidence"), ComparisonOp.GE, ("e2", "confidence"))
        assert comparison.evaluate(lookup)
        reverse = Comparison(("e2", "confidence"), ComparisonOp.GE, ("e1", "confidence"))
        assert not reverse.evaluate(lookup)

    def test_type_error_yields_false(self):
        lookup = self.lookup_factory({"a": {"x": "text"}, "b": {"x": 3}})
        assert not Comparison(("a", "x"), ComparisonOp.LT, ("b", "x")).evaluate(lookup)

    def test_variables_reported(self):
        assert same_value("a", "name", "b").variables() == {"a", "b"}
        assert value_is("a", "name", "x").variables() == {"a"}

    def test_describe_mentions_both_sides(self):
        text = different_value("a", "name", "b").describe()
        assert "a.name" in text and "b.name" in text
