"""Tests for the predicate-pushdown value buckets and their matcher wiring.

Covers:

* :func:`variable_pushdowns` — which constraints compile into pushdown specs
  (unary ``EQ`` predicates, literal ``EQ`` comparisons, cross-variable ``EQ``
  comparisons in both directions) and which must not (edge-variable
  comparisons, non-``EQ`` operators, unhashable constants);
* :meth:`CandidateIndex.value_bucket` semantics — completeness for the
  equality, unhashable stored values pooled rather than dropped, ``None``
  for unanswerable probes, label-scoped vs label-free indexes;
* indexed == unindexed matcher equivalence with every pushdown shape, on
  hand-built graphs and on all three workload generators' rule libraries
  (the acceptance pin for this optimisation);
* the dead-branch prunes (empty bucket; bound neighbour missing the compared
  property) returning exactly the matches the naive matcher finds;
* the prune counters flowing through :class:`MatchingStats` into
  :class:`RepairReport`.
"""

from __future__ import annotations

import pytest

from repro.api import RepairConfig, repair_copy
from repro.datasets.registry import build_workload
from repro.graph import PropertyGraph
from repro.matching import (
    CandidateIndex,
    Comparison,
    ComparisonOp,
    Matcher,
    MatcherConfig,
    Pattern,
    PatternEdge,
    PatternNode,
    VF2Matcher,
    eq,
    gt,
    same_value,
    value_is,
    variable_pushdowns,
)

DOMAINS = ("kg", "movies", "social")


def _match_keys(matcher_graph, pattern, candidate_index):
    engine = VF2Matcher(graph=matcher_graph, candidate_index=candidate_index)
    return {match.key() for match in engine.find_matches(pattern)}, engine.stats


def _assert_equivalent(graph, pattern):
    """The indexed matcher (pushdown active) finds exactly the naive matches."""
    indexed, _ = _match_keys(graph, pattern, CandidateIndex(graph))
    naive, _ = _match_keys(graph, pattern, None)
    assert indexed == naive
    return indexed


class TestVariablePushdowns:
    def test_unary_eq_predicates_compile(self):
        pattern = Pattern(nodes=[PatternNode("x", "Person",
                                             predicates=(eq("country", "FR"),))],
                          name="unary")
        specs = variable_pushdowns(pattern)
        assert specs["x"].unary == (("country", "FR"),)
        assert specs["x"].literal == ()
        assert specs["x"].dynamic == ()

    def test_range_predicates_compile_into_ranges(self):
        # since the sorted-bucket layer, gt/lt/le/ge compile as range
        # pushdowns (not equality pushdowns — see test_sorted_index.py)
        pattern = Pattern(nodes=[PatternNode("x", "Person",
                                             predicates=(gt("age", 30),))],
                          name="non-eq")
        specs = variable_pushdowns(pattern)
        assert specs["x"].unary == ()
        assert specs["x"].ranges == (("age", "gt", 30),)

    def test_unhashable_constants_are_skipped(self):
        pattern = Pattern(nodes=[PatternNode("x", "Person",
                                             predicates=(eq("tags", ["a", "b"]),))],
                          name="unhashable")
        assert variable_pushdowns(pattern) == {}

    def test_literal_comparisons_compile_separately(self):
        pattern = Pattern(nodes=[PatternNode("x", "Person")],
                          comparisons=[value_is("x", "country", "FR")],
                          name="literal")
        specs = variable_pushdowns(pattern)
        assert specs["x"].literal == (("country", "FR"),)
        assert specs["x"].unary == ()

    def test_dynamic_comparisons_compile_both_directions(self):
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[same_value("a", "name", "b")],
            name="dedup")
        specs = variable_pushdowns(pattern)
        assert specs["a"].dynamic == (("name", "b", "name"),)
        assert specs["b"].dynamic == (("name", "a", "name"),)
        assert "c" not in specs

    def test_edge_variable_comparisons_are_excluded(self):
        pattern = Pattern(
            nodes=[PatternNode("x", "Person"), PatternNode("y", "City")],
            edges=[PatternEdge("x", "y", "bornIn", variable="e1"),
                   PatternEdge("x", "y", "bornIn", variable="e2")],
            comparisons=[Comparison(("e1", "confidence"), ComparisonOp.EQ,
                                    ("e2", "confidence"))],
            name="edge-vars")
        assert variable_pushdowns(pattern) == {}


class TestValueBucketSemantics:
    def _graph(self):
        graph = PropertyGraph()
        graph.add_node("Person", {"name": "ada"}, node_id="p1")
        graph.add_node("Person", {"name": "ada"}, node_id="p2")
        graph.add_node("Person", {"name": "bob"}, node_id="p3")
        graph.add_node("Person", {}, node_id="p4")
        graph.add_node("City", {"name": "ada"}, node_id="c1")
        return graph

    def test_label_scoped_bucket(self):
        graph = self._graph()
        index = CandidateIndex(graph)
        index.ensure_value_index("Person", "name")
        assert index.value_bucket("Person", "name", "ada") == {"p1", "p2"}
        assert index.value_bucket("Person", "name", "bob") == {"p3"}
        assert index.value_bucket("Person", "name", "eve") == frozenset()

    def test_label_free_bucket_spans_labels(self):
        graph = self._graph()
        index = CandidateIndex(graph)
        index.ensure_value_index(None, "name")
        assert index.value_bucket(None, "name", "ada") == {"p1", "p2", "c1"}

    def test_unregistered_pair_is_unanswerable(self):
        index = CandidateIndex(self._graph())
        assert index.value_bucket("Person", "name", "ada") is None

    def test_unhashable_probe_is_unanswerable(self):
        graph = self._graph()
        index = CandidateIndex(graph)
        index.ensure_value_index("Person", "name")
        assert index.value_bucket("Person", "name", ["ada"]) is None

    def test_unhashable_stored_values_stay_in_every_bucket(self):
        graph = self._graph()
        graph.update_node("p3", {"name": ["weird", "list"]})
        index = CandidateIndex(graph)
        index.ensure_value_index("Person", "name")
        # p3's value cannot be dict-keyed; completeness demands it shows up in
        # every probe so the residual predicate check can decide
        assert index.value_bucket("Person", "name", "ada") == {"p1", "p2", "p3"}
        assert index.value_bucket("Person", "name", "nope") == {"p3"}

    def test_cross_type_equal_values_share_a_bucket(self):
        graph = PropertyGraph()
        graph.add_node("N", {"v": 1}, node_id="a")
        graph.add_node("N", {"v": 1.0}, node_id="b")
        graph.add_node("N", {"v": True}, node_id="c")
        index = CandidateIndex(graph)
        index.ensure_value_index("N", "v")
        # Python dict semantics: 1 == 1.0 == True hash identically, matching
        # the == the predicates evaluate
        assert index.value_bucket("N", "v", 1) == {"a", "b", "c"}

    def test_maintenance_tracks_mutations(self):
        graph = self._graph()
        index = CandidateIndex(graph)
        index.attach()
        index.ensure_value_index("Person", "name")
        graph.update_node("p4", {"name": "ada"})
        assert index.value_bucket("Person", "name", "ada") == {"p1", "p2", "p4"}
        graph.update_node("p1", {"name": "eve"})
        assert index.value_bucket("Person", "name", "ada") == {"p2", "p4"}
        graph.remove_node("p2")
        assert index.value_bucket("Person", "name", "ada") == {"p4"}
        graph.relabel_node("p4", "Robot")
        assert index.value_bucket("Person", "name", "ada") == frozenset()
        assert index.check_value_integrity()
        index.detach()

    def test_merge_refreshes_kept_node_values(self):
        graph = self._graph()
        index = CandidateIndex(graph)
        index.attach()
        index.ensure_value_index("Person", "name")
        # p4 has no name; merging bob into it adopts bob's name
        graph.merge_nodes("p4", "p3", prefer_kept_properties=True)
        assert index.value_bucket("Person", "name", "bob") == {"p4"}
        assert index.check_value_integrity()
        index.detach()


class TestPushdownMatcherEquivalence:
    def _dedup_graph(self):
        graph = PropertyGraph()
        city = graph.add_node("City", {"name": "rome"})
        for name in ("ada", "ada", "bob", "eve", "eve", "eve"):
            person = graph.add_node("Person", {"name": name})
            graph.add_edge(person.id, city.id, "bornIn")
        return graph

    def test_same_value_dedup_pattern(self):
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[same_value("a", "name", "b")],
            name="dedup")
        matches = _assert_equivalent(self._dedup_graph(), pattern)
        # ada pair (2 orientations) + eve triple (6 orientations)
        assert len(matches) == 8

    def test_unary_eq_root_pattern(self):
        pattern = Pattern(
            nodes=[PatternNode("p", "Person", predicates=(eq("name", "ada"),)),
                   PatternNode("c", "City")],
            edges=[PatternEdge("p", "c", "bornIn")],
            name="named-person")
        matches = _assert_equivalent(self._dedup_graph(), pattern)
        assert len(matches) == 2

    def test_literal_comparison_pattern(self):
        pattern = Pattern(
            nodes=[PatternNode("p", "Person"), PatternNode("c", "City")],
            edges=[PatternEdge("p", "c", "bornIn")],
            comparisons=[value_is("p", "name", "eve")],
            name="literal-person")
        matches = _assert_equivalent(self._dedup_graph(), pattern)
        assert len(matches) == 3

    def test_missing_compared_property_prunes_to_naive_answer(self):
        graph = self._dedup_graph()
        nameless = graph.add_node("Person", {})
        city_id = next(n.id for n in graph.nodes_with_label("City"))
        graph.add_edge(nameless.id, city_id, "bornIn")
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[same_value("a", "name", "b")],
            name="dedup")
        # the nameless node can never satisfy the comparison: both matchers
        # must exclude it (the indexed one prunes the branch outright)
        matches = _assert_equivalent(graph, pattern)
        assert len(matches) == 8

    def test_unhashable_property_values_still_match(self):
        graph = PropertyGraph()
        city = graph.add_node("City", {"name": "rome"})
        weird1 = graph.add_node("Person", {"name": ["list", "name"]})
        weird2 = graph.add_node("Person", {"name": ["list", "name"]})
        graph.add_edge(weird1.id, city.id, "bornIn")
        graph.add_edge(weird2.id, city.id, "bornIn")
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[same_value("a", "name", "b")],
            name="dedup")
        matches = _assert_equivalent(graph, pattern)
        assert len(matches) == 2  # the two orientations of the weird pair

    def test_empty_bucket_prunes_branch(self):
        graph = self._dedup_graph()
        pattern = Pattern(
            nodes=[PatternNode("p", "Person", predicates=(eq("name", "nobody"),)),
                   PatternNode("c", "City")],
            edges=[PatternEdge("p", "c", "bornIn")],
            name="absent")
        index = CandidateIndex(graph)
        engine = VF2Matcher(graph=graph, candidate_index=index)
        assert engine.find_matches(pattern) == []
        # the pushdown answered from the bucket: at most the pivot variable's
        # root was tried, never a Person candidate
        assert engine.stats.nodes_tried <= 1

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_workload_rules_equivalence(self, domain):
        """Acceptance pin: indexed == unindexed matches for every rule
        pattern of every dataset domain."""
        workload = build_workload(domain, scale=80, error_rate=0.08, seed=5)
        optimized = Matcher(workload.dirty, MatcherConfig.optimized(),
                            maintain_index=False)
        naive = Matcher(workload.dirty, MatcherConfig.naive(),
                        maintain_index=False)
        for rule in workload.rules:
            left = {m.key() for m in optimized.find_matches(rule.pattern)}
            right = {m.key() for m in naive.find_matches(rule.pattern)}
            assert left == right, rule.name
        optimized.close()
        naive.close()

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_workload_repair_equivalence(self, domain):
        """Fast repair with the pushdown produces the same graph as the
        index-less ablation configuration."""
        workload = build_workload(domain, scale=60, error_rate=0.08, seed=7)
        with_index, _ = repair_copy(workload.dirty, workload.rules,
                                    config=RepairConfig.fast())
        without_index, _ = repair_copy(workload.dirty, workload.rules,
                                       config=RepairConfig.ablation("index"))
        assert with_index.structurally_equal(without_index)


class TestPruneCountersSurfaced:
    def test_matching_stats_counters_populate(self):
        workload = build_workload("kg", scale=60, error_rate=0.08, seed=3)
        matcher = Matcher(workload.dirty, MatcherConfig.optimized(),
                          maintain_index=False)
        for rule in workload.rules:
            matcher.find_matches(rule.pattern)
        stats = matcher.stats
        assert stats.label_bucket_candidates > 0
        assert stats.value_bucket_candidates > 0  # the dedup rules push down
        assert stats.predicate_survivors > 0
        flat = stats.as_dict()
        assert flat["label_bucket_candidates"] == stats.label_bucket_candidates
        assert flat["value_bucket_candidates"] == stats.value_bucket_candidates
        assert flat["predicate_survivors"] == stats.predicate_survivors
        matcher.close()

    def test_repair_report_carries_prune_counters(self):
        workload = build_workload("kg", scale=60, error_rate=0.1, seed=3)
        _, report = repair_copy(workload.dirty, workload.rules,
                                config=RepairConfig.fast())
        flat = report.as_dict()
        assert flat["value_bucket_candidates"] == \
            report.matching_stats.value_bucket_candidates
        assert flat["label_bucket_candidates"] == \
            report.matching_stats.label_bucket_candidates
        assert flat["predicate_survivors"] == \
            report.matching_stats.predicate_survivors
        assert report.matching_stats.value_bucket_candidates > 0
