"""Unit tests for the rule-set static analysis (dependencies, consistency,
termination, redundancy, witnesses)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ConsistencyVerdict,
    TerminationVerdict,
    analyze_redundancy,
    analyze_termination,
    build_dependency_graph,
    check_consistency,
    is_rule_redundant,
    materialize_pattern,
    witness_for_rule,
)
from repro.repair import detect_violations
from repro.rules import (
    RuleSet,
    conflict_rule,
    incompleteness_rule,
    knowledge_graph_rules,
    redundancy_rule,
)


def oscillating_pair() -> RuleSet:
    """The canonical inconsistent pair: one rule adds what the other deletes."""
    adder = (incompleteness_rule("always-add")
             .node("a", "X").node("b", "Y")
             .edge("a", "b", "base")
             .missing_edge("a", "b", "derived")
             .add_edge("a", "b", "derived")
             .build())
    deleter = (conflict_rule("always-delete")
               .node("a", "X").node("b", "Y")
               .edge("a", "b", "derived", variable="e")
               .delete_edge(edge_variable="e")
               .build())
    return RuleSet([adder, deleter], name="oscillating")


def benign_pair() -> RuleSet:
    """Two rules that never interact (different labels everywhere)."""
    first = (conflict_rule("one-birthplace")
             .node("p", "Person").node("c1", "City").node("c2", "City")
             .edge("p", "c1", "bornIn", variable="e1")
             .edge("p", "c2", "bornIn", variable="e2")
             .delete_edge(edge_variable="e2")
             .build())
    second = (redundancy_rule("dedup-likes")
              .node("u", "User").node("q", "Post")
              .edge("u", "q", "likes", variable="e1")
              .edge("u", "q", "likes", variable="e2")
              .delete_edge(edge_variable="e2")
              .build())
    return RuleSet([first, second], name="benign")


class TestWitnesses:
    def test_witness_contains_exactly_one_violation_per_rule(self):
        for rule in knowledge_graph_rules():
            witness = witness_for_rule(rule)
            detection = detect_violations(witness, RuleSet([rule], name="solo"))
            assert len(detection) >= 1, f"witness of {rule.name} shows no violation"

    def test_materialize_pattern_satisfies_comparisons(self, duplicate_person_pattern):
        witness = materialize_pattern(duplicate_person_pattern)
        names = [node.get("name") for node in witness.nodes_with_label("Person")]
        assert len(names) == 2 and names[0] == names[1]

    def test_wildcard_variables_get_placeholder_label(self):
        from repro.matching import Pattern, PatternNode

        witness = materialize_pattern(Pattern(nodes=[PatternNode("x")], name="any"))
        assert witness.node("x").label == "Thing"


class TestDependencyGraph:
    def test_trigger_and_disable_relations_on_kg_library(self):
        graph = build_dependency_graph(knowledge_graph_rules())
        triggers = {(rel.source, rel.target) for rel in graph.triggers()}
        disables = {(rel.source, rel.target) for rel in graph.disables()}
        # adding a nationality can silence (disable) the add-nationality rule itself
        assert ("kg-add-nationality", "kg-add-nationality") in disables or \
            ("kg-add-nationality", "kg-add-nationality") in triggers or True
        # the nationality-conflict rule deletes nationality edges, which re-creates
        # work for the incompleteness rule
        assert ("kg-nationality-matches-birthplace", "kg-add-nationality") in triggers
        # and the incompleteness rule supplies what the conflict rule needs as evidence
        assert ("kg-add-nationality", "kg-nationality-matches-birthplace") in triggers

    def test_benign_rules_have_no_relations(self):
        graph = build_dependency_graph(benign_pair())
        assert graph.relations == []
        assert graph.trigger_cycles() == []

    def test_oscillating_pair_forms_a_trigger_cycle(self):
        graph = build_dependency_graph(oscillating_pair())
        cycles = graph.trigger_cycles()
        assert any({"always-add", "always-delete"} == set(cycle) for cycle in cycles)
        assert graph.undoes()

    def test_describe_renders(self):
        text = build_dependency_graph(oscillating_pair()).describe()
        assert "always-add" in text and "triggers" in text


class TestTermination:
    def test_benign_set_is_terminating(self):
        report = analyze_termination(benign_pair())
        assert report.verdict is TerminationVerdict.TERMINATING

    def test_subtractive_cycles_are_terminating(self):
        first = (conflict_rule("delete-r")
                 .node("a", "X").node("b", "Y").node("c", "Y")
                 .edge("a", "b", "r", variable="e1").edge("a", "c", "r", variable="e2")
                 .delete_edge(edge_variable="e2").build())
        second = (redundancy_rule("delete-r-dup")
                  .node("a", "X").node("b", "Y")
                  .edge("a", "b", "r", variable="e1").edge("a", "b", "r", variable="e2")
                  .delete_edge(edge_variable="e2").build())
        report = analyze_termination(RuleSet([first, second], name="subtractive"))
        assert report.is_terminating

    def test_oscillating_pair_is_unknown(self):
        report = analyze_termination(oscillating_pair())
        assert report.verdict is TerminationVerdict.UNKNOWN
        assert report.risky_cycles


class TestConsistency:
    def test_benign_set_is_consistent_by_sufficient_conditions(self):
        report = check_consistency(benign_pair())
        assert report.verdict is ConsistencyVerdict.CONSISTENT
        assert report.is_consistent

    def test_oscillating_pair_is_flagged_inconsistent(self):
        report = check_consistency(oscillating_pair())
        assert report.verdict is ConsistencyVerdict.INCONSISTENT
        assert report.conflicting_pairs

    def test_exact_check_confirms_oscillation_with_witness(self):
        report = check_consistency(oscillating_pair(), exact=True,
                                   max_repairs_per_witness=20)
        assert report.verdict is ConsistencyVerdict.INCONSISTENT
        assert report.checked_exactly
        assert "always-add" in report.non_converging_rules

    def test_kg_library_exact_check_refutes_syntactic_alarm(self):
        """The hand-written KG library trips the conservative syntactic checks
        (the nationality rules add and delete the same edge label), but the
        bounded chase shows every witness converges — the exact check upgrades
        the verdict to consistent."""
        kg = knowledge_graph_rules()
        sufficient = check_consistency(kg)
        assert sufficient.verdict in (ConsistencyVerdict.UNKNOWN,
                                      ConsistencyVerdict.INCONSISTENT)
        exact = check_consistency(kg, exact=True, max_repairs_per_witness=50)
        assert exact.verdict is ConsistencyVerdict.CONSISTENT

    def test_describe_renders(self):
        assert "consistent" in check_consistency(benign_pair()).describe().lower()


class TestRedundancy:
    def test_independent_rules_are_all_necessary(self):
        report = analyze_redundancy(benign_pair())
        assert report.redundant_rules() == []
        assert len(report.necessary_rules()) == 2

    def test_duplicated_rule_is_detected_as_redundant(self):
        base = (conflict_rule("one-birthplace")
                .node("p", "Person").node("c1", "City").node("c2", "City")
                .edge("p", "c1", "bornIn", variable="e1")
                .edge("p", "c2", "bornIn", variable="e2")
                .delete_edge(edge_variable="e2")
                .build())
        clone = (conflict_rule("one-birthplace-clone")
                 .node("p", "Person").node("c1", "City").node("c2", "City")
                 .edge("p", "c1", "bornIn", variable="e1")
                 .edge("p", "c2", "bornIn", variable="e2")
                 .delete_edge(edge_variable="e2")
                 .build())
        rules = RuleSet([base, clone], name="duplicated")
        result = is_rule_redundant(clone, rules)
        assert result.redundant
        assert result.repairs_by_others >= 1

    def test_single_rule_set_is_never_redundant(self):
        rules = RuleSet([next(iter(knowledge_graph_rules()))], name="single")
        report = analyze_redundancy(rules)
        assert report.redundant_rules() == []
        assert "necessary" in report.describe()
