"""Unit tests for pattern decomposition and incremental match maintenance."""

from __future__ import annotations

import pytest

from repro.graph import ChangeRecorder, PropertyGraph
from repro.matching import (
    CandidateIndex,
    IncrementalMatcher,
    Pattern,
    PatternEdge,
    PatternNode,
    VF2Matcher,
    build_search_plan,
    choose_pivot,
    decompose_into_stars,
    same_value,
    variables_compatible_with_label,
)


@pytest.fixture
def chain_pattern() -> Pattern:
    return Pattern(
        nodes=[PatternNode("p", "Person"), PatternNode("c", "City"),
               PatternNode("k", "Country")],
        edges=[PatternEdge("p", "c", "bornIn"), PatternEdge("c", "k", "inCountry")],
        name="chain")


class TestDecomposition:
    def test_pivot_prefers_constrained_variables(self, chain_pattern):
        pivot = choose_pivot(chain_pattern)
        # "c" touches two pattern edges, the others touch one
        assert pivot == "c"

    def test_search_plan_is_connected(self, chain_pattern):
        plan = build_search_plan(chain_pattern)
        assert set(plan.order) == set(chain_pattern.variables)
        assert plan.join_edges[0] == []  # pivot has no join edges
        for variable, joins in zip(plan.order[1:], plan.join_edges[1:]):
            assert joins, f"variable {variable} should join the bound prefix"
            for edge in joins:
                assert variable in (edge.source, edge.target)

    def test_star_cover_includes_every_edge(self, chain_pattern):
        plan = build_search_plan(chain_pattern)
        stars = decompose_into_stars(chain_pattern, plan.order)
        covered = [edge for star in stars for edge in star.edges]
        assert len(covered) == len(chain_pattern.edges)
        assert all(star.leaves for star in stars)

    def test_explicit_pivot_is_respected(self, chain_pattern):
        plan = build_search_plan(chain_pattern, pivot="p")
        assert plan.pivot == "p"
        assert plan.position("p") == 0

    def test_compatible_variables_by_label(self, chain_pattern):
        assert variables_compatible_with_label(chain_pattern, "Person") == ["p"]
        assert variables_compatible_with_label(chain_pattern, "Ghost") == []
        wildcard = Pattern(nodes=[PatternNode("x")], name="wild")
        assert variables_compatible_with_label(wildcard, "Anything") == ["x"]


class TestIncrementalMatcher:
    def _setup(self, graph):
        index = CandidateIndex(graph)
        index.attach()
        incremental = IncrementalMatcher(graph, candidate_index=index)
        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        return incremental, recorder

    def test_initial_enumeration_matches_full_search(self, tiny_kg, duplicate_person_pattern):
        incremental, _ = self._setup(tiny_kg.copy())
        store = incremental.register(duplicate_person_pattern)
        expected = VF2Matcher(graph=tiny_kg).find_matches(duplicate_person_pattern)
        assert len(store) == len(expected)

    def test_added_edge_discovers_new_matches(self, duplicate_person_pattern):
        graph = PropertyGraph()
        ada = graph.add_node("Person", {"name": "Ada"})
        ada2 = graph.add_node("Person", {"name": "Ada"})
        city = graph.add_node("City", {"name": "London"})
        graph.add_edge(ada.id, city.id, "bornIn")
        incremental, recorder = self._setup(graph)
        store = incremental.register(duplicate_person_pattern)
        assert len(store) == 0

        graph.add_edge(ada2.id, city.id, "bornIn")
        updates = incremental.apply_delta(recorder.drain())
        update = updates[duplicate_person_pattern.name]
        assert len(update.discovered) == 2  # both orientations
        assert len(store) == 2
        assert update.seeded_searches > 0

    def test_removed_edge_invalidates_matches(self, tiny_kg, duplicate_person_pattern):
        graph = tiny_kg.copy()
        incremental, recorder = self._setup(graph)
        store = incremental.register(duplicate_person_pattern)
        assert len(store) == 2

        ada2 = [node for node in graph.nodes_with_label("Person")
                if node.get("name") == "Ada"][1]
        for edge in graph.out_edges_with_label(ada2.id, "bornIn"):
            graph.remove_edge(edge.id)
        updates = incremental.apply_delta(recorder.drain())
        assert len(updates[duplicate_person_pattern.name].invalidated) == 2
        assert len(store) == 0

    def test_node_merge_keeps_store_consistent_with_recompute(self, tiny_kg,
                                                              duplicate_person_pattern):
        graph = tiny_kg.copy()
        incremental, recorder = self._setup(graph)
        store = incremental.register(duplicate_person_pattern)
        ada_ids = [node.id for node in graph.nodes_with_label("Person")
                   if node.get("name") == "Ada"]
        graph.merge_nodes(ada_ids[0], ada_ids[1])
        incremental.apply_delta(recorder.drain())
        recomputed = incremental.recompute(duplicate_person_pattern.name)
        assert {match.key() for match in store} == set() or \
            {match.key() for match in store} == {match.key() for match in recomputed}
        assert len(recomputed) == 0

    def test_incremental_equals_recompute_after_mixed_mutations(self, tiny_kg):
        """The incremental store must equal a from-scratch re-enumeration after
        an arbitrary batch of mutations (the core correctness property)."""
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[same_value("a", "name", "b")],
            name="dup")
        graph = tiny_kg.copy()
        incremental, recorder = self._setup(graph)
        store = incremental.register(pattern)

        # batch 1: add a brand-new duplicate pair in Paris
        paris = next(node.id for node in graph.nodes_with_label("City")
                     if node.get("name") == "Paris")
        dave1 = graph.add_node("Person", {"name": "Dave"})
        dave2 = graph.add_node("Person", {"name": "Dave"})
        graph.add_edge(dave1.id, paris, "bornIn")
        graph.add_edge(dave2.id, paris, "bornIn")
        incremental.apply_delta(recorder.drain())

        # batch 2: remove one of the original Ada duplicates
        ada_ids = [node.id for node in graph.nodes_with_label("Person")
                   if node.get("name") == "Ada"]
        graph.remove_node(ada_ids[1])
        incremental.apply_delta(recorder.drain())

        fresh = {match.key() for match in VF2Matcher(graph=graph).find_matches(pattern)}
        assert {match.key() for match in store} == fresh

    def test_empty_delta_is_a_no_op(self, tiny_kg, duplicate_person_pattern):
        incremental, recorder = self._setup(tiny_kg.copy())
        incremental.register(duplicate_person_pattern)
        assert incremental.apply_delta(recorder.drain()) == {}

    def test_total_matches_sums_stores(self, tiny_kg, duplicate_person_pattern, chain_pattern=None):
        incremental, _ = self._setup(tiny_kg.copy())
        first = incremental.register(duplicate_person_pattern)
        assert incremental.total_matches() == len(first)
