"""Tests for the inverted element→match index and the delta-driven hot path.

Covers:

* the inverted index in :class:`MatchStore` (lookup correctness + integrity
  under randomized mutation sequences on all three dataset generators);
* the O(matches touching the delta) invalidation bound, asserted with the
  ``invalidation_checked`` counter rather than timing;
* the ``pattern_requirements`` regression: parallel variable-less pattern
  edges between the same variable pair must not over-prune;
* matcher statistics flowing from incremental maintenance and extension
  probes into the :class:`RepairReport`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.registry import build_workload, load_dataset
from repro.datasets.rulegen import RuleGenConfig, generate_rules
from repro.graph import ChangeRecorder, PropertyGraph
from repro.matching import (
    CandidateIndex,
    IncrementalMatcher,
    Pattern,
    PatternEdge,
    PatternNode,
    VF2Matcher,
    naive_candidates,
    pattern_requirements,
)
from repro.repair.engine import EngineConfig, RepairEngine

DOMAINS = ("kg", "movies", "social")


def _random_mutation(graph: PropertyGraph, rng: random.Random) -> bool:
    """Apply one random mutation; returns False if the drawn op was a no-op."""
    op = rng.choice(["add_edge", "add_edge", "remove_edge", "remove_node",
                     "add_node", "relabel_node", "relabel_edge", "update_node",
                     "merge"])
    if op == "add_edge" and graph.num_nodes >= 2:
        labels = sorted(graph.edge_labels()) or ["rel"]
        ids = graph.node_ids()
        graph.add_edge(rng.choice(ids), rng.choice(ids), rng.choice(labels))
    elif op == "remove_edge" and graph.num_edges:
        graph.remove_edge(rng.choice(graph.edge_ids()))
    elif op == "remove_node" and graph.num_nodes > 2:
        graph.remove_node(rng.choice(graph.node_ids()))
    elif op == "add_node":
        graph.add_node(rng.choice(sorted(graph.node_labels())))
    elif op == "relabel_node" and graph.num_nodes:
        graph.relabel_node(rng.choice(graph.node_ids()),
                           rng.choice(sorted(graph.node_labels())))
    elif op == "relabel_edge" and graph.num_edges:
        graph.relabel_edge(rng.choice(graph.edge_ids()),
                           rng.choice(sorted(graph.edge_labels())))
    elif op == "update_node" and graph.num_nodes:
        graph.update_node(rng.choice(graph.node_ids()),
                          {"name": rng.choice(["X", "Y", "Z"])})
    elif op == "merge" and graph.num_nodes > 3:
        keep, merge = rng.sample(graph.node_ids(), 2)
        graph.merge_nodes(keep, merge)
    else:
        return False
    return True


class TestInvertedIndexEqualsRecompute:
    """apply_delta with the inverted index must produce store contents
    identical to a from-scratch re-enumeration, across randomized repair-like
    mutation sequences on every dataset generator."""

    @pytest.mark.parametrize("domain", DOMAINS)
    @pytest.mark.parametrize("seed", [1, 42])
    def test_randomized_sequences(self, domain, seed):
        rng = random.Random(seed)
        graph = load_dataset(domain, scale=50, seed=seed).clean
        rules = generate_rules(graph, RuleGenConfig(num_rules=5, seed=seed))

        index = CandidateIndex(graph)
        index.attach()
        incremental = IncrementalMatcher(graph, candidate_index=index)
        for rule in rules:
            incremental.register(rule.pattern)
        recorder = ChangeRecorder()
        graph.add_listener(recorder)

        mutations = 0
        while mutations < 25:
            if not _random_mutation(graph, rng):
                continue
            mutations += 1
            incremental.apply_delta(recorder.drain())
            if mutations % 5 == 0:
                oracle = VF2Matcher(graph=graph, candidate_index=index)
                for store in incremental.stores():
                    expected = {m.key() for m in oracle.find_matches(store.pattern)}
                    assert {m.key() for m in store} == expected
                    assert store.check_integrity()

    @given(seed=st.integers(min_value=0, max_value=10_000),
           mutation_count=st.integers(min_value=5, max_value=30))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_value_buckets_survive_random_mutations(self, seed, mutation_count):
        """The incrementally-maintained value buckets must equal an index
        rebuilt from scratch after any mutation sequence (the value-bucket
        mirror of the MatchStore integrity property above)."""
        rng = random.Random(seed)
        graph = load_dataset("kg", scale=30, seed=seed).clean
        index = CandidateIndex(graph)
        index.attach()
        # register the shapes the pushdown uses: a label-scoped key, the same
        # key label-free, and a key that is often absent
        index.ensure_value_index("Person", "name")
        index.ensure_value_index(None, "name")
        index.ensure_value_index("City", "population")
        mutations = 0
        while mutations < mutation_count:
            if not _random_mutation(graph, rng):
                continue
            mutations += 1
        assert index.check_value_integrity()
        # and the probe surface agrees with a from-scratch index
        fresh = CandidateIndex(graph)
        fresh.ensure_value_index("Person", "name")
        for node in graph.nodes_with_label("Person"):
            name = node.properties.get("name")
            if name is None:
                continue
            assert index.value_bucket("Person", "name", name) == \
                fresh.value_bucket("Person", "name", name)
        index.detach()

    def test_matches_touching_equals_linear_scan(self, tiny_kg, duplicate_person_pattern):
        graph = tiny_kg.copy()
        incremental = IncrementalMatcher(graph)
        store = incremental.register(duplicate_person_pattern)
        assert len(store) > 0
        all_node_ids = set(graph.node_ids())
        for node_id in all_node_ids:
            via_index = {m.key() for m in store.matches_touching(node_ids={node_id})}
            via_scan = {m.key() for m in store if m.touches(node_ids={node_id})}
            assert via_index == via_scan
        assert store.check_integrity()


class TestInvalidationIsDeltaLocal:
    """Invalidation work must be O(matches touching the delta), not O(store)."""

    def _many_independent_matches(self, pairs: int) -> PropertyGraph:
        graph = PropertyGraph(name="stars")
        for i in range(pairs):
            a = graph.add_node("Person", {"name": f"dup{i}"})
            b = graph.add_node("Person", {"name": f"dup{i}"})
            city = graph.add_node("City", {"name": f"city{i}"})
            graph.add_edge(a.id, city.id, "bornIn")
            graph.add_edge(b.id, city.id, "bornIn")
        return graph

    def test_counter_bounds_invalidation_work(self):
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            name="dup-pair")
        graph = self._many_independent_matches(pairs=40)
        index = CandidateIndex(graph)
        index.attach()
        incremental = IncrementalMatcher(graph, candidate_index=index)
        store = incremental.register(pattern)
        assert len(store) == 80  # both orientations per pair

        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        # Delete one pair's witness edge: the delta touches exactly 2 stored
        # matches (the two orientations of that pair).
        victim = next(e for e in graph.edges() if e.source == "n1")
        graph.remove_edge(victim.id)
        updates = incremental.apply_delta(recorder.drain())
        update = updates[pattern.name]

        assert update.invalidation_checked == 2
        assert update.invalidation_checked < len(store) + len(update.invalidated)
        assert len(update.invalidated) == 2
        assert len(store) == 78
        assert store.check_integrity()

    def test_unrelated_region_checks_nothing(self):
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            name="dup-pair")
        graph = self._many_independent_matches(pairs=10)
        outsider = graph.add_node("Organization", {"name": "acme"})
        other = graph.add_node("Organization", {"name": "globex"})
        incremental = IncrementalMatcher(graph)
        incremental.register(pattern)

        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        graph.add_edge(outsider.id, other.id, "partnerOf")
        updates = incremental.apply_delta(recorder.drain())
        update = updates[pattern.name]
        # No stored match binds the two organizations.
        assert update.invalidation_checked == 0
        assert update.invalidated == []


class TestPatternRequirementsRegression:
    """Parallel variable-less pattern edges may share one witnessing data edge
    (hypothesis-found over-pruning bug in the seed implementation)."""

    def _pattern(self) -> Pattern:
        return Pattern(
            nodes=[PatternNode("v0", None), PatternNode("v1", "A")],
            edges=[PatternEdge("v0", "v1", "r"), PatternEdge("v0", "v1", "r")],
            name="parallel")

    def test_shared_witness_requires_single_edge(self):
        pattern = self._pattern()
        out_required, _ = pattern_requirements(pattern, "v0")
        assert out_required["r"] == 1  # both constraints can share one witness
        _, in_required = pattern_requirements(pattern, "v1")
        assert in_required["r"] == 1

    def test_edge_variables_still_require_distinct_witnesses(self):
        pattern = Pattern(
            nodes=[PatternNode("v0", None), PatternNode("v1", "A")],
            edges=[PatternEdge("v0", "v1", "r", variable="e1"),
                   PatternEdge("v0", "v1", "r", variable="e2")],
            name="parallel-vars")
        out_required, _ = pattern_requirements(pattern, "v0")
        assert out_required["r"] == 2

    def test_optimized_matcher_agrees_with_naive_on_shared_witness(self):
        graph = PropertyGraph()
        a0 = graph.add_node("A")
        a1 = graph.add_node("A")
        graph.add_node("A")
        graph.add_node("B")
        graph.add_edge(a0.id, a0.id, "r")
        graph.add_edge(a0.id, a1.id, "r")
        pattern = self._pattern()

        naive = VF2Matcher(graph=graph, candidate_index=None, use_decomposition=False)
        expected = {m.key() for m in naive.find_matches(pattern)}
        assert expected  # the bug made this match disappear under the index

        index = CandidateIndex(graph)
        optimized = VF2Matcher(graph=graph, candidate_index=index, use_decomposition=True)
        assert {m.key() for m in optimized.find_matches(pattern)} == expected
        for variable in ("v0", "v1"):
            assert sorted(index.candidates(pattern, variable)) == \
                sorted(naive_candidates(graph, pattern, variable))


class TestMatcherStatsSurfaced:
    """Seeded incremental searches and extension probes must contribute their
    MatchingStats to the repair report (they were lost in the seed)."""

    def test_fast_report_carries_matching_stats(self):
        workload = build_workload("kg", scale=60, error_rate=0.1, seed=3)
        _, report = RepairEngine(EngineConfig.fast()).repair_copy(
            workload.dirty, workload.rules)
        assert report.repairs_applied > 0
        assert report.matching_stats.nodes_tried > 0
        assert report.matching_stats.matches_found > 0
        flat = report.as_dict()
        assert flat["nodes_tried"] == report.matching_stats.nodes_tried
        assert flat["backtracks"] == report.matching_stats.backtracks

    def test_naive_report_carries_matching_stats(self):
        workload = build_workload("kg", scale=60, error_rate=0.1, seed=3)
        _, report = RepairEngine(EngineConfig.naive()).repair_copy(
            workload.dirty, workload.rules)
        assert report.matching_stats.nodes_tried > 0

    def test_incremental_matcher_accumulates_stats(self, tiny_kg, duplicate_person_pattern):
        graph = tiny_kg.copy()
        incremental = IncrementalMatcher(graph)
        incremental.register(duplicate_person_pattern)
        baseline = incremental.stats.nodes_tried
        assert baseline > 0

        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        people = [n for n in graph.nodes_with_label("Person")]
        city = graph.nodes_with_label("City")[0]
        graph.add_edge(people[0].id, city.id, "bornIn")
        incremental.apply_delta(recorder.drain())
        assert incremental.stats.nodes_tried >= baseline
