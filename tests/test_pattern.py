"""Unit tests for pattern definition, validation, and the match oracle."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidPatternError
from repro.matching import (
    Match,
    Pattern,
    PatternEdge,
    PatternNode,
    exists,
    pattern_from_graph,
    pattern_to_graph,
    same_value,
)


class TestPatternValidation:
    def test_empty_pattern_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern(nodes=[])

    def test_duplicate_variable_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern(nodes=[PatternNode("x"), PatternNode("x")])

    def test_edge_with_unknown_variable_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern(nodes=[PatternNode("x")], edges=[PatternEdge("x", "y", "r")])

    def test_edge_variable_clashing_with_node_variable_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern(nodes=[PatternNode("x"), PatternNode("y")],
                    edges=[PatternEdge("x", "y", "r", variable="x")])

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern(nodes=[PatternNode("x"), PatternNode("y")])

    def test_comparison_over_unknown_variable_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern(nodes=[PatternNode("x")], comparisons=[same_value("x", "name", "z")])

    def test_single_node_pattern_is_connected(self):
        pattern = Pattern(nodes=[PatternNode("x", "Person")])
        assert pattern.variables == ["x"]
        assert pattern.size() == 1

    def test_self_loop_pattern_is_valid(self):
        pattern = Pattern(nodes=[PatternNode("u", "User")],
                          edges=[PatternEdge("u", "u", "follows", variable="e")])
        assert pattern.edge_variables == ["e"]


class TestPatternAccessors:
    def test_adjacency_and_edge_lookup(self, duplicate_person_pattern):
        pattern = duplicate_person_pattern
        assert pattern.adjacent_variables("c") == {"a", "b"}
        assert pattern.adjacent_variables("a") == {"c"}
        assert len(pattern.edges_touching("c")) == 2
        assert pattern.node_labels() == {"Person", "City"}
        assert pattern.edge_labels() == {"bornIn"}
        assert pattern.has_variable("a") and not pattern.has_variable("zzz")

    def test_node_variable_lookup_errors(self, duplicate_person_pattern):
        with pytest.raises(InvalidPatternError):
            duplicate_person_pattern.node_variable("missing")

    def test_describe_mentions_variables(self, duplicate_person_pattern):
        text = duplicate_person_pattern.describe()
        assert "(a:Person)" in text and "bornIn" in text


class TestCheckMatchOracle:
    def test_valid_assignment_accepted(self, tiny_kg, duplicate_person_pattern):
        ada_ids = [node.id for node in tiny_kg.nodes_with_label("Person")
                   if node.get("name") == "Ada"]
        london = next(node.id for node in tiny_kg.nodes_with_label("City")
                      if node.get("name") == "London")
        assignment = {"a": ada_ids[0], "b": ada_ids[1], "c": london}
        assert duplicate_person_pattern.check_match(tiny_kg, assignment)

    def test_injectivity_enforced(self, tiny_kg, duplicate_person_pattern):
        ada = next(node.id for node in tiny_kg.nodes_with_label("Person")
                   if node.get("name") == "Ada")
        london = next(node.id for node in tiny_kg.nodes_with_label("City")
                      if node.get("name") == "London")
        assert not duplicate_person_pattern.check_match(
            tiny_kg, {"a": ada, "b": ada, "c": london})

    def test_comparison_enforced(self, tiny_kg, duplicate_person_pattern):
        people = {node.get("name"): node.id for node in tiny_kg.nodes_with_label("Person")}
        paris = next(node.id for node in tiny_kg.nodes_with_label("City")
                     if node.get("name") == "Paris")
        # Bob and Carol are both born in Paris but have different names.
        assignment = {"a": people["Bob"], "b": people["Carol"], "c": paris}
        assert not duplicate_person_pattern.check_match(tiny_kg, assignment)

    def test_missing_edge_rejected(self, tiny_kg, duplicate_person_pattern):
        people = {node.get("name"): node.id for node in tiny_kg.nodes_with_label("Person")}
        london = next(node.id for node in tiny_kg.nodes_with_label("City")
                      if node.get("name") == "London")
        # Carol is born in Paris, not London.
        assignment = {"a": people["Ada"], "b": people["Carol"], "c": london}
        assert not duplicate_person_pattern.check_match(tiny_kg, assignment)

    def test_incomplete_assignment_rejected(self, tiny_kg, duplicate_person_pattern):
        assert not duplicate_person_pattern.check_match(tiny_kg, {"a": "n0"})

    def test_label_and_predicate_checked(self, tiny_kg):
        pattern = Pattern(nodes=[PatternNode("x", "Person", predicates=(exists("name"),))])
        person = tiny_kg.nodes_with_label("Person")[0]
        country = tiny_kg.nodes_with_label("Country")[0]
        assert pattern.check_match(tiny_kg, {"x": person.id})
        assert not pattern.check_match(tiny_kg, {"x": country.id})


class TestMatchObject:
    def test_key_is_stable_and_hashable(self, duplicate_person_pattern):
        match = Match(pattern=duplicate_person_pattern,
                      node_bindings={"a": "1", "b": "2", "c": "3"})
        again = Match(pattern=duplicate_person_pattern,
                      node_bindings={"c": "3", "b": "2", "a": "1"})
        assert match.key() == again.key()
        assert hash(match.key())

    def test_touches(self, duplicate_person_pattern):
        match = Match(pattern=duplicate_person_pattern,
                      node_bindings={"a": "1", "b": "2", "c": "3"},
                      edge_bindings={"e": "e9"})
        assert match.touches(node_ids={"2"})
        assert match.touches(edge_ids={"e9"})
        assert not match.touches(node_ids={"42"}, edge_ids={"e1"})

    def test_is_valid_reflects_graph_changes(self, tiny_kg, duplicate_person_pattern):
        ada_ids = [node.id for node in tiny_kg.nodes_with_label("Person")
                   if node.get("name") == "Ada"]
        london = next(node.id for node in tiny_kg.nodes_with_label("City")
                      if node.get("name") == "London")
        match = Match(pattern=duplicate_person_pattern,
                      node_bindings={"a": ada_ids[0], "b": ada_ids[1], "c": london})
        graph = tiny_kg.copy()
        assert match.is_valid(graph)
        graph.merge_nodes(ada_ids[0], ada_ids[1])
        assert not match.is_valid(graph)


class TestPatternGraphConversion:
    def test_round_trip_preserves_shape(self, duplicate_person_pattern):
        graph = pattern_to_graph(duplicate_person_pattern)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        back = pattern_from_graph(graph, name="back")
        assert len(back.nodes) == 3
        assert len(back.edges) == 2

    def test_pattern_from_graph_can_keep_properties(self, tiny_kg):
        sub = tiny_kg.subgraph(tiny_kg.node_ids()[:1])
        pattern = pattern_from_graph(sub, keep_properties=True)
        assert pattern.nodes[0].predicates  # property equality predicates generated
