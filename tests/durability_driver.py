"""Shared driver for the crash-recovery tests (NOT a test module).

The SIGKILL smoke test needs the same deterministic edit traffic in two
places: a child process that gets killed mid-stream, and the parent that
rebuilds the uninterrupted reference run.  :func:`scripted_edit` is that
traffic — the ``step``-th edit depends only on ``(seed, step)`` and the
current graph state, so any two runs that executed the same prefix hold
identical graphs.

Run as a script (the crash child)::

    python tests/durability_driver.py <durable-root> <seed> <steps>

which serves a deterministic kg workload durably out of ``<durable-root>``
and applies ``<steps>`` scripted edits; the parent SIGKILLs it somewhere in
the middle and recovers.
"""

from __future__ import annotations

import random
import sys

WORKLOAD_SCALE = 60
WORKLOAD_SEED = 3
SNAPSHOT_EVERY = 40

_NODE_LABELS = ("Person", "City", "Country")
_EDGE_LABELS = ("knows", "livesIn", "bornIn")


def scripted_edit(graph, seed: int, step: int) -> None:
    """Apply the deterministic ``step``-th edit of stream ``seed``.

    Always changes the graph (every step publishes exactly one changefeed
    record), and every few steps writes a codec-hostile property value so
    the crash path exercises the tagged value encoding too.
    """
    rng = random.Random(f"{seed}:{step}")
    nodes = sorted(graph.node_ids())
    edges = sorted(graph.edge_ids())
    hostile = [float("nan"), ("t", 1), b"\x00\xff", {1: "k"}, {"s", "e", "t"}]
    value = hostile[step % len(hostile)] if step % 5 == 0 else step
    action = rng.choice(["add_node", "add_edge", "update", "remove_edge",
                         "relabel", "remove_node"])
    # every branch below *guarantees* a real change: a no-op edit publishes
    # no changefeed record, which would break the step-count == sequence
    # correspondence the crash test's reference replay relies on
    if action == "add_edge" and nodes:
        graph.add_edge(rng.choice(nodes), rng.choice(nodes),
                       rng.choice(_EDGE_LABELS), {"w": value})
    elif action == "update" and nodes:
        graph.update_node(rng.choice(nodes), {"touched": (step, value)})
    elif action == "remove_edge" and edges:
        graph.remove_edge(rng.choice(edges))
    elif action == "relabel" and nodes:
        target = rng.choice(nodes)
        current = graph.node(target).label
        graph.relabel_node(target, rng.choice(
            [label for label in _NODE_LABELS if label != current] or ["Other"]))
    elif action == "remove_node" and len(nodes) > 10:
        graph.remove_node(rng.choice(nodes))
    else:
        node = graph.add_node(rng.choice(_NODE_LABELS), {"v": value})
        if nodes:
            graph.add_edge(node.id, rng.choice(nodes),
                           rng.choice(_EDGE_LABELS))


def build_crash_workload():
    from repro.datasets import build_workload

    return build_workload("kg", scale=WORKLOAD_SCALE, error_rate=0.08,
                          seed=WORKLOAD_SEED)


def reference_run(steps: int, seed: int):
    """The uninterrupted run: the graph after ``steps`` scripted edits."""
    graph = build_crash_workload().dirty.copy(name="kg")
    for step in range(steps):
        scripted_edit(graph, seed, step)
    return graph


def main(root: str, seed: int, steps: int) -> None:
    from repro.rules.grr import RuleSet
    from repro.service import DurabilityConfig, GraphRepairService

    workload = build_crash_workload()
    graph = workload.dirty.copy(name="kg")
    # fsync=False stays crash-safe against SIGKILL (flushed pages live in
    # the kernel, not the process) and keeps the child fast enough that the
    # parent reliably catches it mid-stream
    config = DurabilityConfig(dir=root, snapshot_every=SNAPSHOT_EVERY,
                              fsync=False)
    with GraphRepairService() as service:
        service.serve("kg", graph, RuleSet([]), durable=config)
        for step in range(steps):
            service.apply(
                "kg", lambda g, step=step: scripted_edit(g, seed, step))


if __name__ == "__main__":
    main(sys.argv[1], int(sys.argv[2]), int(sys.argv[3]))
