"""The cost-based match planner: equivalence, ablation, and observability.

The planner replaces the static ``base_order`` with a per-graph variable
order chosen greedily from live candidate-index cardinalities.  Its contract
is strictly *perf-only*: for any graph, rule set, and backend, turning it
off (``ablation("planner")`` / ``use_cost_planner=False``) must produce the
same matches and the same repaired graph, element for element.  These tests
pin that contract across all three dataset generators and both the
sequential and sharded/warm backends, and check the new ``planner_*``
counters surface end to end.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api import RepairConfig, RepairSession
from repro.datasets import build_workload
from repro.matching import CandidateIndex, Matcher, MatcherConfig, VF2Matcher
from repro.repair.engine import EngineConfig

DOMAINS = ("kg", "movies", "social")


def _workload(domain):
    return build_workload(domain, scale=60, error_rate=0.08, seed=3)


def _repair(graph, rules, config):
    repaired = graph.copy(name=f"{graph.name}-{config.backend}")
    with RepairSession(repaired, rules, config=config) as session:
        report = session.repair()
        fanout = getattr(session.backend, "last_fanout", None)
    return repaired, report, fanout


class TestPlannerMatchEquivalence:
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_planned_order_finds_identical_matches(self, domain):
        workload = _workload(domain)
        graph = workload.dirty
        for rule in workload.rules:
            planned = VF2Matcher(graph=graph,
                                 candidate_index=CandidateIndex(graph),
                                 use_cost_planner=True)
            static = VF2Matcher(graph=graph,
                                candidate_index=CandidateIndex(graph),
                                use_cost_planner=False)
            planned_keys = {m.key() for m in planned.find_matches(rule.pattern)}
            static_keys = {m.key() for m in static.find_matches(rule.pattern)}
            assert planned_keys == static_keys, rule.name

    def test_matcher_config_threads_the_flag(self):
        assert MatcherConfig.optimized().use_cost_planner is True
        assert MatcherConfig.naive().use_cost_planner is False
        workload = _workload("kg")
        planned = Matcher(workload.dirty, MatcherConfig.optimized())
        static = Matcher(workload.dirty,
                         replace(MatcherConfig.optimized(),
                                 use_cost_planner=False))
        for rule in workload.rules:
            assert {m.key() for m in planned.find_matches(rule.pattern)} == \
                {m.key() for m in static.find_matches(rule.pattern)}


class TestPlannerRepairEquivalence:
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_fast_equals_planner_ablation(self, domain):
        workload = _workload(domain)
        on_graph, on_report, _ = _repair(workload.dirty, workload.rules,
                                         RepairConfig.fast())
        off_graph, off_report, _ = _repair(workload.dirty, workload.rules,
                                           RepairConfig.ablation("planner"))
        assert on_graph.structurally_equal(off_graph)
        assert on_report.repairs_applied == off_report.repairs_applied
        assert on_report.violations_detected == off_report.violations_detected
        assert on_report.reached_fixpoint == off_report.reached_fixpoint
        # the ablation really did disable the planner
        assert on_report.matching_stats.planner_plans > 0
        assert off_report.matching_stats.planner_plans == 0

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_sharded_backend_planner_on_off_agree(self, domain):
        workload = _workload(domain)
        on_graph, _, on_fanout = _repair(
            workload.dirty, workload.rules,
            RepairConfig.sharded(workers=2, parallel_inline=True,
                                 min_partition_nodes=1))
        off_graph, _, _ = _repair(
            workload.dirty, workload.rules,
            RepairConfig.sharded(workers=2, parallel_inline=True,
                                 min_partition_nodes=1,
                                 use_cost_planner=False))
        assert on_fanout.ran
        assert on_graph.structurally_equal(off_graph)
        assert on_fanout.shard_planner_plans > 0

    def test_warm_backend_planner_on_off_agree(self):
        workload = _workload("kg")
        on_graph, _, _ = _repair(
            workload.dirty, workload.rules,
            RepairConfig.sharded(workers=2, warm=True, parallel_inline=True,
                                 min_partition_nodes=1))
        off_graph, _, _ = _repair(
            workload.dirty, workload.rules,
            RepairConfig.sharded(workers=2, warm=True, parallel_inline=True,
                                 min_partition_nodes=1,
                                 use_cost_planner=False))
        assert on_graph.structurally_equal(off_graph)


class TestPlannerObservability:
    def test_report_surfaces_planner_counters(self):
        workload = _workload("kg")
        _, report, _ = _repair(workload.dirty, workload.rules,
                               RepairConfig.fast())
        stats = report.matching_stats
        assert stats.planner_plans > 0
        assert stats.planner_orders  # at least one pattern got a plan
        for name, order in stats.planner_orders.items():
            assert order, name
            assert set(stats.planner_estimated.get(name, {})) <= set(order)
        as_dict = report.as_dict()
        for key in ("planner_plans", "planner_replans", "planner_orders",
                    "planner_estimated", "planner_actual",
                    "range_bucket_candidates"):
            assert key in as_dict
        assert "planner:" in report.describe()

    def test_ablation_knob_reaches_engine_config(self):
        config = EngineConfig.ablation("planner")
        assert config.use_cost_planner is False
        assert config.use_candidate_index is True
        assert RepairConfig.ablation("planner").use_cost_planner is False

    def test_planner_replans_after_heavy_mutation(self):
        """A graph whose bucket cardinalities shift hard between searches
        must trigger at most re-plans, never a wrong result."""
        workload = _workload("kg")
        graph = workload.dirty.copy(name="replan")
        matcher = VF2Matcher(graph=graph,
                             candidate_index=CandidateIndex(graph),
                             use_cost_planner=True)
        matcher.candidate_index.attach()
        rule = next(iter(workload.rules))
        before = {m.key() for m in matcher.find_matches(rule.pattern)}
        assert matcher.stats.planner_plans >= 1
        # skew the graph: a pile of fresh nodes under one label
        for i in range(200):
            graph.add_node("Person", {"name": f"skew-{i}"})
        after = {m.key() for m in matcher.find_matches(rule.pattern)}
        fresh = VF2Matcher(graph=graph, candidate_index=CandidateIndex(graph),
                           use_cost_planner=False)
        assert after == {m.key() for m in fresh.find_matches(rule.pattern)}
        assert before  # the rule does fire on this workload
        matcher.candidate_index.detach()
