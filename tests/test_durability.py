"""The durability subsystem: codec, WAL, snapshots, recovery, service wiring.

The contract under test, end to end: a tenant served with
``durable=DurabilityConfig(dir=...)`` can lose its process at any moment —
including SIGKILL mid-append — and ``restore()`` brings back a graph
element-for-element identical to the uninterrupted run's acknowledged
prefix: same ids, labels, properties, and the same fresh-id stream.
"""

from __future__ import annotations

import json
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import RepairConfig, RepairSession
from repro.exceptions import DurabilityError, ServiceError
from repro.graph.io import graph_to_dict
from repro.graph.property_graph import PropertyGraph
from repro.rules.grr import RuleSet
from repro.durability import (
    DurabilityConfig,
    TenantDurability,
    WriteAheadLog,
    codec,
    has_tenant_state,
    recover,
)
from repro.durability.snapshot import (
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.durability.wal import (
    list_segments,
    read_segment,
    segment_first_sequence,
)
from repro.service import GraphRepairService

import durability_driver


def _exactly_equal(left: PropertyGraph, right: PropertyGraph) -> bool:
    a, b = graph_to_dict(left), graph_to_dict(right)
    a.pop("name", None)
    b.pop("name", None)
    return json.dumps(a, sort_keys=True, default=repr) \
        == json.dumps(b, sort_keys=True, default=repr)


# ---------------------------------------------------------------------------
# the value / record codec
# ---------------------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, 1.5, "plain", "",
        (1, "two", (3,)), [1, [2, ("x",)]],
        b"\x00\xff", bytearray(b"ab"),
        {"nested": {"deep": (1, 2)}},
        {1: "intkey", (2, 3): "tuplekey"},
        {"$tuple": "not-a-tag-really"},
        frozenset({1, 2}), {"a", "b"},
        float("inf"), float("-inf"),
    ], ids=repr)
    def test_value_round_trip(self, value):
        document = codec.encode_value(value)
        # the wire form must survive real JSON serialisation
        rebuilt = codec.decode_value(codec.loads(codec.dumps({"x": document}))["x"])
        assert rebuilt == value
        assert type(rebuilt) is type(value) or isinstance(value, bytearray)

    def test_nan_round_trips_as_nan(self):
        rebuilt = codec.decode_value(codec.encode_value(float("nan")))
        assert math.isnan(rebuilt)

    def test_arbitrary_hashable_falls_back_to_pickle(self):
        value = complex(2, 3)
        document = codec.encode_value(value)
        assert "$pickle" in document
        assert codec.decode_value(document) == value

    def test_unknown_tag_raises(self):
        with pytest.raises(DurabilityError, match="unknown value tag"):
            codec.decode_value({"$fancy": 1})

    def test_newer_format_version_refused(self):
        record = codec.encode_record(1, "commit", _one_change_delta())
        record["v"] = codec.FORMAT_VERSION + 1
        with pytest.raises(DurabilityError, match="newer than this codec"):
            codec.decode_record(record)
        with pytest.raises(DurabilityError, match="no format version"):
            codec.check_version({"seq": 1})

    def test_record_round_trip_through_bytes(self):
        delta = _one_change_delta()
        payload = codec.dumps(codec.encode_record(41, "repair", delta))
        sequence, source, rebuilt = codec.decode_record(codec.loads(payload))
        assert (sequence, source) == (41, "repair")
        assert [c.kind for c in rebuilt.changes] == [c.kind for c in delta.changes]

    def test_graph_snapshot_restores_id_counters(self):
        graph = PropertyGraph(name="g")
        doomed = graph.add_node("Person", {"score": float("nan")})
        graph.add_node("City", {"name": ("x", 1)})
        graph.remove_node(doomed.id)  # the counter remembers what ids are burnt
        rebuilt = codec.decode_graph(codec.loads(codec.dumps(
            codec.encode_graph(graph))))
        assert _exactly_equal(rebuilt, graph)
        assert rebuilt.add_node("X").id == graph.add_node("X").id


def _one_change_delta():
    from repro.graph.delta import recording

    graph = PropertyGraph(name="d")
    with recording(graph) as recorder:
        graph.add_node("Person", {"v": (1, float("nan"))})
    return recorder.drain()


# ---------------------------------------------------------------------------
# the write-ahead log
# ---------------------------------------------------------------------------


def _record(sequence: int) -> dict:
    return codec.encode_record(sequence, "commit", _one_change_delta())


class TestWriteAheadLog:
    def test_append_read_round_trip_across_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            for sequence in range(1, 6):
                wal.append(_record(sequence))
            assert wal.last_sequence == 5
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            assert wal.last_sequence == 5
            assert [r["seq"] for r in wal.records()] == [1, 2, 3, 4, 5]
            assert [r["seq"] for r in wal.records(after=3)] == [4, 5]

    def test_dense_sequences_enforced(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            wal.append(_record(1))
            with pytest.raises(DurabilityError, match="out-of-order"):
                wal.append(_record(3))
            with pytest.raises(DurabilityError, match="out-of-order"):
                wal.append(_record(1))

    def test_rotation_and_truncation(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=256, fsync=False) as wal:
            for sequence in range(1, 21):
                wal.append(_record(sequence))
            segments = list_segments(tmp_path)
            assert len(segments) > 2
            # truncating through a mid-log sequence drops only whole segments
            deleted = wal.truncate_through(wal.last_sequence - 1)
            assert deleted >= 1
            assert [r["seq"] for r in wal.records()][-1] == 20
            # the tail segment always survives
            assert wal.truncate_through(10 ** 9) < len(segments)
            assert list_segments(tmp_path)
            # appends continue after truncation released earlier segments
            wal.append(_record(21))
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            assert wal.last_sequence == 21

    def test_empty_log_resumes_mid_history(self, tmp_path):
        """After a snapshot truncated everything, the next append resumes at
        the tenant's global sequence, not at 1."""
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            wal.append(_record(500))
            wal.append(_record(501))
            with pytest.raises(DurabilityError):
                wal.append(_record(600))

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            for sequence in range(1, 4):
                wal.append(_record(sequence))
        (tail,) = list_segments(tmp_path)
        with tail.open("ab") as handle:  # a crash mid-append: half a frame
            handle.write(b"\x99\x00\x00\x00partial")
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            assert wal.last_sequence == 3
            assert [r["seq"] for r in wal.records()] == [1, 2, 3]
            wal.append(_record(4))  # and the log keeps going
        records, _ = read_segment(tail, is_tail=True)
        assert [r["seq"] for r in records] == [1, 2, 3, 4]

    def test_torn_before_magic_drops_the_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=64, fsync=False) as wal:
            wal.append(_record(1))
            wal.append(_record(2))  # rotated: two segments now
        segments = list_segments(tmp_path)
        segments[-1].write_bytes(b"RW")  # torn during segment creation
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            assert wal.last_sequence == 1
            wal.append(_record(2))

    def test_sealed_segment_corruption_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=64, fsync=False) as wal:
            for sequence in range(1, 4):
                wal.append(_record(sequence))
        first = list_segments(tmp_path)[0]
        data = bytearray(first.read_bytes())
        data[len(data) // 2] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(DurabilityError, match="damaged beyond torn-tail"):
            WriteAheadLog(tmp_path, fsync=False)


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------


class TestSnapshots:
    def test_write_load_latest_and_prune(self, tmp_path):
        graph = PropertyGraph(name="s")
        graph.add_node("Person", {"x": (1, 2)})
        for sequence in (10, 20, 30):
            graph.add_node("City", {"seq": sequence})
            write_snapshot(tmp_path, graph, sequence, fsync=False)
        loaded, sequence = load_snapshot(list_snapshots(tmp_path)[-1])
        assert sequence == 30 and _exactly_equal(loaded, graph)
        assert prune_snapshots(tmp_path, keep=2) == 1
        assert [p.name for p in list_snapshots(tmp_path)] \
            == [f"snapshot-{s:012d}.snap" for s in (20, 30)]
        # keep below the fallback floor is coerced up
        assert prune_snapshots(tmp_path, keep=0) == 0

    def test_corrupt_latest_falls_back(self, tmp_path):
        graph = PropertyGraph(name="s")
        graph.add_node("Person")
        write_snapshot(tmp_path, graph, 10, fsync=False)
        graph.add_node("Person")
        newest = write_snapshot(tmp_path, graph, 20, fsync=False)
        newest.write_bytes(newest.read_bytes()[:-9])  # mangle the body
        loaded, sequence, path = latest_snapshot(tmp_path)
        assert sequence == 10
        assert loaded.num_nodes == 1

    def test_no_intact_snapshot_is_none(self, tmp_path):
        assert latest_snapshot(tmp_path) is None


# ---------------------------------------------------------------------------
# the tenant sink + recovery
# ---------------------------------------------------------------------------


class TestTenantDurability:
    def _config(self, tmp_path, **overrides) -> DurabilityConfig:
        options = {"snapshot_every": 4, "fsync": False}
        options.update(overrides)
        return DurabilityConfig(dir=tmp_path, **options)

    def test_recover_matches_live_session_exactly(self, tmp_path,
                                                  small_kg_workload):
        config = self._config(tmp_path)
        graph = small_kg_workload.dirty.copy(name="kg")
        sink = TenantDurability("kg", config)
        sink.bootstrap(graph)
        with RepairSession(graph, small_kg_workload.rules) as session:
            sink.attach(session)
            session.repair()                       # repair records
            session.apply(lambda g: g.add_node("City", {"name": "Geneva"}))
            session.stage(lambda g: g.add_node("City", {"name": "doomed"}))
            session.rollback()                     # never reaches the log
            session.repair()
            for index in range(4):                 # past the snapshot cadence
                session.apply(lambda g: g.add_node("P", {"i": index}))
            assert sink.records_appended == session.last_sequence
            assert sink.snapshots_written >= 1
        sink.close()
        recovered = recover("kg", config)
        assert recovered.sequence == sink.global_sequence
        assert recovered.records_replayed <= config.snapshot_every
        assert _exactly_equal(recovered.graph, graph)
        # the fresh-id streams agree too: recovery is a true continuation
        assert recovered.graph.add_node("X").id == graph.add_node("X").id

    def test_wal_is_written_before_commit_acknowledges(self, tmp_path):
        """The write-ahead contract: when a later subscriber (a replica, the
        caller) observes a record, it is already durable."""
        config = self._config(tmp_path)
        graph = PropertyGraph(name="kg")
        observed: list[tuple[int, int]] = []
        sink = TenantDurability("kg", config)
        sink.bootstrap(graph)
        with RepairSession(graph, RuleSet([])) as session:
            session.on_commit(lambda record: observed.append(
                (record.sequence, sink.wal.last_sequence)))
            sink.attach(session)   # attached after — prepend outranks order
            session.apply(lambda g: g.add_node("Person"))
            session.apply(lambda g: g.add_node("Person"))
        sink.close()
        assert observed == [(1, 1), (2, 2)]

    def test_snapshot_cadence_bounds_replay(self, tmp_path):
        config = self._config(tmp_path, snapshot_every=3)
        graph = PropertyGraph(name="kg")
        sink = TenantDurability("kg", config)
        sink.bootstrap(graph)
        with RepairSession(graph, RuleSet([])) as session:
            sink.attach(session)
            for index in range(10):
                session.apply(lambda g: g.add_node("P", {"i": index}))
        assert sink.snapshots_written == 3     # at sequences 3, 6, 9
        assert sink.stats()["global_sequence"] == 10
        sink.close()
        assert recover("kg", config).records_replayed == 1  # only seq 10

    def test_bootstrap_and_attach_refuse_misuse(self, tmp_path):
        config = self._config(tmp_path)
        graph = PropertyGraph(name="kg")
        sink = TenantDurability("kg", config)
        sink.bootstrap(graph)
        with pytest.raises(DurabilityError, match="already has durable"):
            sink.bootstrap(graph)
        with RepairSession(graph, RuleSet([])) as session:
            session.apply(lambda g: g.add_node("P"))
            with pytest.raises(DurabilityError, match="never saw"):
                sink.attach(session)
        sink.close()
        sink.close()  # idempotent

    def test_lost_segment_fails_recovery_loudly(self, tmp_path):
        config = self._config(tmp_path, snapshot_every=1000,
                              segment_bytes=256)
        graph = PropertyGraph(name="kg")
        sink = TenantDurability("kg", config)
        sink.bootstrap(graph)
        with RepairSession(graph, RuleSet([])) as session:
            sink.attach(session)
            for index in range(20):
                session.apply(lambda g: g.add_node("P", {"i": index}))
        sink.close()
        segments = list_segments(config.tenant_dir("kg"))
        assert len(segments) > 2
        segments[1].unlink()  # a middle segment vanishes
        with pytest.raises(DurabilityError, match="gap"):
            recover("kg", config)

    def test_recover_without_state_raises(self, tmp_path):
        with pytest.raises(DurabilityError, match="no durable state"):
            recover("ghost", self._config(tmp_path))
        assert not has_tenant_state(self._config(tmp_path), "ghost")


# ---------------------------------------------------------------------------
# service wiring
# ---------------------------------------------------------------------------


class TestServiceDurability:
    def test_serve_stop_restore_continues_the_log(self, tmp_path,
                                                  small_kg_workload):
        config = DurabilityConfig(dir=tmp_path, snapshot_every=5, fsync=False)
        rules = small_kg_workload.rules
        with GraphRepairService() as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          rules, durable=config)
            service.repair("kg")
            service.apply("kg", lambda g: g.add_node("City", {"name": "Oslo"}))
            expected = json.dumps(graph_to_dict(service.graph("kg")),
                                  sort_keys=True, default=repr)
            stats = service.durability("kg").stats()
        with GraphRepairService() as service:
            session = service.restore("kg", rules, durable=config)
            assert json.dumps(graph_to_dict(session.graph), sort_keys=True,
                              default=repr) == expected
            info = service.recovery_info("kg")
            assert info.sequence == stats["global_sequence"]
            # new commits continue the same global log
            service.apply("kg", lambda g: g.add_node("City", {"name": "Rio"}))
            sink = service.durability("kg")
            assert sink.global_sequence == info.sequence + 1
        recovered = recover("kg", config)
        assert recovered.sequence == info.sequence + 1

    def test_serve_refuses_existing_state(self, tmp_path):
        config = DurabilityConfig(dir=tmp_path, fsync=False)
        with GraphRepairService() as service:
            service.serve("kg", PropertyGraph(name="kg"), RuleSet([]),
                          durable=config)
            service.apply("kg", lambda g: g.add_node("P"))
            service.stop_serving("kg")
            with pytest.raises(ServiceError, match="restore"):
                service.serve("kg", PropertyGraph(name="kg"), RuleSet([]),
                              durable=config)
            with pytest.raises(ServiceError, match="not served durably"):
                service.durability("kg")

    def test_non_durable_tenants_are_unaffected(self, tmp_path):
        with GraphRepairService() as service:
            service.serve("plain", PropertyGraph(name="plain"), RuleSet([]))
            service.apply("plain", lambda g: g.add_node("P"))
            with pytest.raises(ServiceError):
                service.durability("plain")
            with pytest.raises(ServiceError):
                service.recovery_info("plain")


# ---------------------------------------------------------------------------
# SIGKILL crash recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_sigkill_mid_stream_restores_acknowledged_prefix(self, tmp_path):
        """Kill the serving process mid-append; the recovered graph must be
        element-for-element the uninterrupted run at the recovered sequence."""
        seed, steps, kill_after = 11, 100_000, 120
        driver = Path(durability_driver.__file__)
        env = dict(os.environ)
        src = str(Path(driver).parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, str(driver), str(tmp_path), str(seed),
             str(steps)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        tenant_dir = tmp_path / "kg"
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail("crash child exited early: "
                                + child.stderr.read().decode())
                if _observed_sequence(tenant_dir) >= kill_after:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("crash child never reached the kill point")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        config = DurabilityConfig(
            dir=tmp_path, snapshot_every=durability_driver.SNAPSHOT_EVERY,
            fsync=False)
        recovered = recover("kg", config)
        assert recovered.sequence >= kill_after
        assert recovered.sequence < steps, "the kill landed mid-stream"
        reference = durability_driver.reference_run(recovered.sequence, seed)
        assert _exactly_equal(recovered.graph, reference)
        assert recovered.graph.add_node("X").id == reference.add_node("X").id
        # and the restored tenant serves onward through the service API
        with GraphRepairService() as service:
            service.restore("kg", RuleSet([]), durable=config)
            service.apply("kg", lambda g: g.add_node("Survivor"))
            assert service.durability("kg").global_sequence \
                == recovered.sequence + 1


def _observed_sequence(tenant_dir: Path) -> int:
    """Read-only peek at the newest durable sequence while the child runs."""
    try:
        segments = list_segments(tenant_dir)
    except (DurabilityError, OSError):
        return 0
    if not segments:
        return 0
    try:
        records, _ = read_segment(segments[-1], is_tail=True)
    except (DurabilityError, OSError):
        return 0
    if records:
        return int(records[-1]["seq"])
    if len(segments) > 1:  # fresh tail, still empty: the name says enough
        return segment_first_sequence(segments[-1]) - 1
    return 0


# ---------------------------------------------------------------------------
# the hypothesis property: any committed history round-trips the codec
# ---------------------------------------------------------------------------


NODE_LABELS = ("Person", "City", "Country")
EDGE_LABELS = ("knows", "livesIn", "inCountry")

#: tuple-keyed dicts are codec-covered in TestCodec but stay out of this
#: pool: the equality oracle (json.dumps(sort_keys=True)) cannot sort
#: mixed-type dict keys
_pathological_values = st.sampled_from([
    float("nan"), float("inf"), (1, ("a", None)), b"\x00\x01",
    frozenset({1, 2}), {"k", "e"}, {1: "x", 2: "y"}, "plain", 7,
    {"$tuple": "tag-shaped-key"},
])


@st.composite
def seed_graphs(draw, max_nodes: int = 8, max_edges: int = 14) -> PropertyGraph:
    graph = PropertyGraph(name="seed")
    count = draw(st.integers(min_value=2, max_value=max_nodes))
    for index in range(count):
        graph.add_node(draw(st.sampled_from(NODE_LABELS)), {"i": index})
    node_ids = graph.node_ids()
    for _ in range(draw(st.integers(min_value=0, max_value=max_edges))):
        graph.add_edge(draw(st.sampled_from(node_ids)),
                       draw(st.sampled_from(node_ids)),
                       draw(st.sampled_from(EDGE_LABELS)))
    return graph


class TestCodecReplayProperty:
    @given(graph=seed_graphs(), data=st.data())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_committed_history_round_trips(self, graph, data):
        """Every committed mutation history — adds, removals, merges,
        relabels, rollback inverses, pathological property values — encoded
        record by record to wire bytes and decoded back rebuilds the exact
        graph."""
        opening = graph.copy(name="opening")
        wire: list[bytes] = []
        session = RepairSession(graph, [], config=RepairConfig.fast())
        session.on_commit(lambda record: wire.append(codec.dumps(
            codec.encode_record(record.sequence, record.source,
                                record.delta))))
        try:
            for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
                action = data.draw(st.sampled_from(
                    ["add_edge", "remove_edge", "add_node", "remove_node",
                     "update", "relabel", "merge", "rollback"]))
                node_ids = graph.node_ids()
                edge_ids = graph.edge_ids()

                def edit(g, action=action, data=data):
                    if action == "add_edge" and node_ids:
                        g.add_edge(data.draw(st.sampled_from(node_ids)),
                                   data.draw(st.sampled_from(node_ids)),
                                   data.draw(st.sampled_from(EDGE_LABELS)),
                                   {"w": data.draw(_pathological_values)})
                    elif action == "remove_edge" and edge_ids:
                        g.remove_edge(data.draw(st.sampled_from(edge_ids)))
                    elif action == "add_node":
                        node = g.add_node(
                            data.draw(st.sampled_from(NODE_LABELS)),
                            {"v": data.draw(_pathological_values)})
                        if node_ids:
                            g.add_edge(node.id,
                                       data.draw(st.sampled_from(node_ids)),
                                       data.draw(st.sampled_from(EDGE_LABELS)))
                    elif action == "remove_node" and len(node_ids) > 2:
                        g.remove_node(data.draw(st.sampled_from(node_ids)))
                    elif action == "update" and node_ids:
                        g.update_node(data.draw(st.sampled_from(node_ids)),
                                      {"touched": data.draw(
                                          _pathological_values)})
                    elif action == "relabel" and node_ids:
                        g.relabel_node(data.draw(st.sampled_from(node_ids)),
                                       data.draw(st.sampled_from(NODE_LABELS)))
                    elif action == "merge" and len(node_ids) > 3:
                        keep = data.draw(st.sampled_from(node_ids))
                        merge = data.draw(st.sampled_from(
                            [n for n in node_ids if n != keep]))
                        g.merge_nodes(keep, merge,
                                      prefer_kept_properties=data.draw(
                                          st.booleans()),
                                      drop_duplicate_edges=data.draw(
                                          st.booleans()))

                if action == "rollback":
                    # rollback exercises the inverse machinery; its edits
                    # must never reach the wire
                    session.stage(lambda g: g.add_node(
                        "Person", {"doomed": data.draw(_pathological_values)}))
                    session.rollback()
                else:
                    session.apply(edit)

            replica = opening.copy(name="replica")
            expected_sequence = 0
            for payload in wire:
                sequence, source, delta = codec.decode_record(
                    codec.loads(payload))
                assert sequence == expected_sequence + 1
                assert source in ("commit", "repair")
                expected_sequence = sequence
                from repro.graph.delta import replay_delta
                replay_delta(replica, delta)
            assert _exactly_equal(replica, session.graph)
        finally:
            session.close()
