"""Unit tests for the property-graph core (nodes, edges, mutations, merge)."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DuplicateElementError,
    EdgeNotFoundError,
    GraphMutationError,
    NodeNotFoundError,
)
from repro.graph import ChangeKind, ChangeRecorder, PropertyGraph


class TestNodeBasics:
    def test_add_node_assigns_fresh_ids(self, empty_graph):
        first = empty_graph.add_node("Person")
        second = empty_graph.add_node("Person")
        assert first.id != second.id
        assert empty_graph.num_nodes == 2

    def test_add_node_with_explicit_id(self, empty_graph):
        node = empty_graph.add_node("Person", node_id="alice")
        assert node.id == "alice"
        assert empty_graph.node("alice").label == "Person"

    def test_add_node_duplicate_id_rejected(self, empty_graph):
        empty_graph.add_node("Person", node_id="alice")
        with pytest.raises(DuplicateElementError):
            empty_graph.add_node("Person", node_id="alice")

    def test_generated_ids_avoid_existing_ones(self, empty_graph):
        empty_graph.add_node("Person", node_id="n0")
        node = empty_graph.add_node("Person")
        assert node.id != "n0"

    def test_node_properties_are_copied(self, empty_graph):
        properties = {"name": "Ada"}
        node = empty_graph.add_node("Person", properties)
        properties["name"] = "changed"
        assert node.properties["name"] == "Ada"

    def test_missing_node_raises(self, empty_graph):
        with pytest.raises(NodeNotFoundError):
            empty_graph.node("nope")

    def test_contains_and_has_node(self, empty_graph):
        node = empty_graph.add_node("Person")
        assert node.id in empty_graph
        assert empty_graph.has_node(node.id)
        assert not empty_graph.has_node("ghost")

    def test_nodes_with_label_uses_index(self, empty_graph):
        empty_graph.add_node("Person", node_id="p1")
        empty_graph.add_node("City", node_id="c1")
        empty_graph.add_node("Person", node_id="p2")
        assert {node.id for node in empty_graph.nodes_with_label("Person")} == {"p1", "p2"}
        assert empty_graph.count_nodes_with_label("City") == 1
        assert empty_graph.count_nodes_with_label("Ghost") == 0


class TestEdgeBasics:
    def test_add_edge_requires_endpoints(self, empty_graph):
        node = empty_graph.add_node("Person")
        with pytest.raises(NodeNotFoundError):
            empty_graph.add_edge(node.id, "ghost", "knows")

    def test_add_edge_and_adjacency(self, empty_graph):
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("Person")
        edge = empty_graph.add_edge(a.id, b.id, "knows")
        assert empty_graph.out_degree(a.id) == 1
        assert empty_graph.in_degree(b.id) == 1
        assert empty_graph.successors(a.id) == {b.id}
        assert empty_graph.predecessors(b.id) == {a.id}
        assert [e.id for e in empty_graph.out_edges(a.id)] == [edge.id]

    def test_parallel_edges_are_allowed(self, empty_graph):
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("City")
        empty_graph.add_edge(a.id, b.id, "livesIn")
        empty_graph.add_edge(a.id, b.id, "livesIn")
        assert len(empty_graph.edges_between(a.id, b.id, "livesIn")) == 2

    def test_edges_between_filters_by_label(self, empty_graph):
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("City")
        empty_graph.add_edge(a.id, b.id, "livesIn")
        empty_graph.add_edge(a.id, b.id, "bornIn")
        assert len(empty_graph.edges_between(a.id, b.id)) == 2
        assert len(empty_graph.edges_between(a.id, b.id, "bornIn")) == 1
        assert empty_graph.has_edge_between(a.id, b.id, "bornIn")
        assert not empty_graph.has_edge_between(b.id, a.id, "bornIn")

    def test_remove_edge(self, empty_graph):
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("Person")
        edge = empty_graph.add_edge(a.id, b.id, "knows")
        removed = empty_graph.remove_edge(edge.id)
        assert removed.id == edge.id
        assert empty_graph.num_edges == 0
        assert empty_graph.degree(a.id) == 0
        with pytest.raises(EdgeNotFoundError):
            empty_graph.edge(edge.id)

    def test_self_loop_counts_once_in_incident_edges(self, empty_graph):
        a = empty_graph.add_node("Person")
        empty_graph.add_edge(a.id, a.id, "follows")
        assert len(empty_graph.incident_edges(a.id)) == 1
        assert empty_graph.degree(a.id) == 2  # out + in
        assert empty_graph.neighbors(a.id) == set()

    def test_edge_labels_index(self, empty_graph):
        a = empty_graph.add_node("A")
        b = empty_graph.add_node("B")
        empty_graph.add_edge(a.id, b.id, "r")
        empty_graph.add_edge(b.id, a.id, "s")
        assert empty_graph.edge_labels() == {"r", "s"}
        assert empty_graph.count_edges_with_label("r") == 1


class TestRemoveNode:
    def test_remove_node_removes_incident_edges(self, empty_graph):
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("Person")
        c = empty_graph.add_node("Person")
        empty_graph.add_edge(a.id, b.id, "knows")
        empty_graph.add_edge(c.id, a.id, "knows")
        empty_graph.add_edge(b.id, c.id, "knows")
        empty_graph.remove_node(a.id)
        assert empty_graph.num_nodes == 2
        assert empty_graph.num_edges == 1
        assert not empty_graph.has_node(a.id)

    def test_remove_node_updates_label_index(self, empty_graph):
        node = empty_graph.add_node("Person")
        empty_graph.remove_node(node.id)
        assert empty_graph.count_nodes_with_label("Person") == 0


class TestUpdateAndRelabel:
    def test_update_node_sets_and_removes(self, empty_graph):
        node = empty_graph.add_node("Person", {"name": "Ada", "age": 36})
        empty_graph.update_node(node.id, {"name": "Ada L."}, remove_keys=["age"])
        assert empty_graph.node(node.id).properties == {"name": "Ada L."}

    def test_update_edge_properties(self, empty_graph):
        a = empty_graph.add_node("A")
        b = empty_graph.add_node("B")
        edge = empty_graph.add_edge(a.id, b.id, "r", {"weight": 1})
        empty_graph.update_edge(edge.id, {"weight": 2, "source": "import"})
        assert empty_graph.edge(edge.id).properties["weight"] == 2

    def test_relabel_node_moves_label_buckets(self, empty_graph):
        node = empty_graph.add_node("Person")
        empty_graph.relabel_node(node.id, "Author")
        assert empty_graph.count_nodes_with_label("Person") == 0
        assert empty_graph.count_nodes_with_label("Author") == 1
        assert empty_graph.node(node.id).label == "Author"

    def test_relabel_edge_moves_label_buckets(self, empty_graph):
        a = empty_graph.add_node("A")
        b = empty_graph.add_node("B")
        edge = empty_graph.add_edge(a.id, b.id, "knows")
        empty_graph.relabel_edge(edge.id, "follows")
        assert empty_graph.count_edges_with_label("knows") == 0
        assert empty_graph.count_edges_with_label("follows") == 1


class TestMergeNodes:
    def _two_people_with_city(self):
        graph = PropertyGraph()
        a = graph.add_node("Person", {"name": "Ada", "birthYear": 1815})
        b = graph.add_node("Person", {"name": "Ada", "nickname": "Lady"})
        city = graph.add_node("City", {"name": "London"})
        graph.add_edge(a.id, city.id, "bornIn")
        graph.add_edge(b.id, city.id, "bornIn")
        graph.add_edge(b.id, city.id, "livesIn")
        return graph, a, b, city

    def test_merge_redirects_and_dedupes_edges(self):
        graph, a, b, city = self._two_people_with_city()
        graph.merge_nodes(a.id, b.id)
        assert not graph.has_node(b.id)
        # the duplicate bornIn edge is dropped, livesIn is redirected
        assert len(graph.edges_between(a.id, city.id, "bornIn")) == 1
        assert len(graph.edges_between(a.id, city.id, "livesIn")) == 1

    def test_merge_unions_properties_prefers_kept(self):
        graph, a, b, _ = self._two_people_with_city()
        graph.merge_nodes(a.id, b.id)
        node = graph.node(a.id)
        assert node.properties["birthYear"] == 1815
        assert node.properties["nickname"] == "Lady"

    def test_merge_incoming_edges_are_redirected(self):
        graph = PropertyGraph()
        a = graph.add_node("Person")
        b = graph.add_node("Person")
        fan = graph.add_node("Person")
        graph.add_edge(fan.id, b.id, "follows")
        graph.merge_nodes(a.id, b.id)
        assert graph.has_edge_between(fan.id, a.id, "follows")

    def test_merge_into_itself_is_rejected(self, empty_graph):
        node = empty_graph.add_node("Person")
        with pytest.raises(GraphMutationError):
            empty_graph.merge_nodes(node.id, node.id)


class TestCopySubgraphNeighborhood:
    def test_copy_is_deep_and_equal(self, tiny_kg):
        clone = tiny_kg.copy()
        assert clone.structurally_equal(tiny_kg)
        clone.add_node("Person", {"name": "New"})
        assert clone.num_nodes == tiny_kg.num_nodes + 1

    def test_subgraph_keeps_internal_edges_only(self, triangle_graph):
        ids = triangle_graph.node_ids()[:2]
        sub = triangle_graph.subgraph(ids)
        assert sub.num_nodes == 2
        assert sub.num_edges == 1

    def test_neighborhood_expands_by_hops(self, triangle_graph):
        start = triangle_graph.node_ids()[0]
        assert triangle_graph.neighborhood([start], hops=0) == {start}
        assert len(triangle_graph.neighborhood([start], hops=1)) == 3

    def test_size_counts_nodes_and_edges(self, triangle_graph):
        assert triangle_graph.size() == 6
        assert len(triangle_graph) == 6

    def test_subgraph_iterates_in_insertion_order(self, tiny_kg):
        keep = set(tiny_kg.node_ids()[2:7])
        sub = tiny_kg.subgraph(keep)
        order_in_parent = [nid for nid in tiny_kg.node_ids() if nid in keep]
        assert sub.node_ids() == order_in_parent

    def test_subgraph_with_namespace_prefixes_new_ids(self, tiny_kg):
        sub = tiny_kg.subgraph(tiny_kg.node_ids()[:3], id_namespace="s2")
        node = sub.add_node("Person")
        edge = sub.add_edge(node.id, sub.node_ids()[0], "knows")
        assert node.id.startswith("s2:n") and edge.id.startswith("s2:e")

    def test_subgraph_missing_node_raises(self, tiny_kg):
        with pytest.raises(NodeNotFoundError):
            tiny_kg.subgraph(["nope"])


class TestPerLabelAdjacencyBuckets:
    """The per-label adjacency index must agree with a filter over the full
    adjacency after every mutation kind that can move edges around."""

    def _assert_buckets_consistent(self, graph):
        for node in graph.nodes():
            for label in {edge.label for edge in graph.out_edges(node.id)} | {None}:
                if label is None:
                    continue
                expected = [e.id for e in graph.out_edges(node.id)
                            if e.label == label]
                assert sorted(graph.out_edge_ids_with_label(node.id, label)) \
                    == sorted(expected)
            for label in {edge.label for edge in graph.in_edges(node.id)}:
                expected = [e.id for e in graph.in_edges(node.id)
                            if e.label == label]
                assert sorted(graph.in_edge_ids_with_label(node.id, label)) \
                    == sorted(expected)

    def test_add_and_remove_edge(self, tiny_kg):
        self._assert_buckets_consistent(tiny_kg)
        person = tiny_kg.nodes_with_label("Person")[0]
        city = tiny_kg.nodes_with_label("City")[0]
        edge = tiny_kg.add_edge(person.id, city.id, "visited")
        assert list(tiny_kg.out_edge_ids_with_label(person.id, "visited")) \
            == [edge.id]
        tiny_kg.remove_edge(edge.id)
        assert not tiny_kg.out_edge_ids_with_label(person.id, "visited")
        self._assert_buckets_consistent(tiny_kg)

    def test_relabel_edge_moves_buckets(self, tiny_kg):
        edge = next(iter(tiny_kg.edges_with_label("livesIn")))
        tiny_kg.relabel_edge(edge.id, "residesIn")
        assert edge.id in tiny_kg.out_edge_ids_with_label(edge.source, "residesIn")
        assert edge.id not in tiny_kg.out_edge_ids_with_label(edge.source, "livesIn")
        assert edge.id in tiny_kg.in_edge_ids_with_label(edge.target, "residesIn")
        self._assert_buckets_consistent(tiny_kg)

    def test_remove_node_clears_buckets(self, tiny_kg):
        person = tiny_kg.nodes_with_label("Person")[0]
        tiny_kg.remove_node(person.id)
        self._assert_buckets_consistent(tiny_kg)
        assert not tiny_kg.out_edge_ids_with_label(person.id, "bornIn")

    def test_merge_nodes_rebuckets_redirected_edges(self, tiny_kg):
        persons = tiny_kg.nodes_with_label("Person")
        keep, merge = persons[0], persons[1]
        tiny_kg.merge_nodes(keep.id, merge.id)
        self._assert_buckets_consistent(tiny_kg)

    def test_labeled_views_match_list_accessors(self, tiny_kg):
        for node in tiny_kg.nodes():
            for edge in tiny_kg.out_edges(node.id):
                listed = [e.id for e in
                          tiny_kg.out_edges_with_label(node.id, edge.label)]
                assert sorted(tiny_kg.out_edge_ids_with_label(node.id, edge.label)) \
                    == listed


class TestNetworkxConversion:
    def test_round_trip_through_networkx(self, tiny_kg):
        nx_graph = tiny_kg.to_networkx()
        back = PropertyGraph.from_networkx(nx_graph, name="back")
        assert back.num_nodes == tiny_kg.num_nodes
        assert back.num_edges == tiny_kg.num_edges
        assert back.node_labels() == tiny_kg.node_labels()
        assert back.edge_labels() == tiny_kg.edge_labels()


class TestChangeEvents:
    def test_every_mutation_emits_a_change(self, empty_graph):
        recorder = ChangeRecorder()
        empty_graph.add_listener(recorder)
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("Person")
        edge = empty_graph.add_edge(a.id, b.id, "knows")
        empty_graph.update_node(a.id, {"name": "Ada"})
        empty_graph.relabel_edge(edge.id, "follows")
        empty_graph.remove_edge(edge.id)
        empty_graph.remove_node(b.id)
        kinds = [change.kind for change in recorder.delta]
        assert kinds == [
            ChangeKind.ADD_NODE, ChangeKind.ADD_NODE, ChangeKind.ADD_EDGE,
            ChangeKind.UPDATE_NODE, ChangeKind.RELABEL_EDGE,
            ChangeKind.REMOVE_EDGE, ChangeKind.REMOVE_NODE,
        ]

    def test_listener_can_be_removed(self, empty_graph):
        recorder = ChangeRecorder()
        empty_graph.add_listener(recorder)
        empty_graph.add_node("Person")
        empty_graph.remove_listener(recorder)
        empty_graph.add_node("Person")
        assert len(recorder.delta) == 1

    def test_merge_emits_single_merge_change_with_details(self, empty_graph):
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("Person")
        c = empty_graph.add_node("City")
        empty_graph.add_edge(b.id, c.id, "bornIn")
        recorder = ChangeRecorder()
        empty_graph.add_listener(recorder)
        empty_graph.merge_nodes(a.id, b.id)
        merges = [change for change in recorder.delta
                  if change.kind == ChangeKind.MERGE_NODES]
        assert len(merges) == 1
        assert merges[0].details["merged"] == b.id
        assert merges[0].details["added_edges"]


class TestSlottedElementsAndSignatureCache:
    """The graph core's scale posture: slotted records, interned strings,
    cached frozen signatures invalidated by every mutation path."""

    def test_elements_have_no_instance_dict(self, empty_graph):
        node = empty_graph.add_node("Person", {"name": "ada"})
        other = empty_graph.add_node("Person")
        edge = empty_graph.add_edge(node.id, other.id, "knows")
        assert not hasattr(node, "__dict__")
        assert not hasattr(edge, "__dict__")

    def test_labels_and_ids_are_interned(self, empty_graph):
        first = empty_graph.add_node("".join(["Per", "son"]))
        second = empty_graph.add_node("".join(["Pers", "on"]))
        assert first.label is second.label
        edge = empty_graph.add_edge(first.id, second.id, "knows")
        # edge endpoints reuse the node records' id strings
        assert edge.source is first.id
        assert edge.target is second.id

    def test_node_signature_cached_and_invalidated(self, empty_graph):
        node = empty_graph.add_node("Person", {"name": "ada"})
        before = node.signature()
        assert node.signature() is before  # cached, not recomputed
        empty_graph.update_node(node.id, {"name": "eve"})
        after = node.signature()
        assert after != before
        assert dict(after[1])["name"] == "eve"
        empty_graph.relabel_node(node.id, "Robot")
        assert node.signature()[0] == "Robot"

    def test_edge_signature_cached_and_invalidated(self, empty_graph):
        a = empty_graph.add_node("Person")
        b = empty_graph.add_node("Person")
        edge = empty_graph.add_edge(a.id, b.id, "knows", {"since": 1})
        before = edge.signature()
        assert edge.signature() is before
        empty_graph.update_edge(edge.id, {"since": 2})
        assert edge.signature() != before
        empty_graph.relabel_edge(edge.id, "met")
        assert edge.signature()[0] == "met"

    def test_merge_invalidates_kept_node_signature(self, empty_graph):
        keep = empty_graph.add_node("Person", {"name": "ada"})
        merge = empty_graph.add_node("Person", {"name": "ada", "age": 30})
        hub = empty_graph.add_node("City")
        empty_graph.add_edge(keep.id, hub.id, "bornIn")
        empty_graph.add_edge(merge.id, hub.id, "bornIn")
        before = keep.signature()
        empty_graph.merge_nodes(keep.id, merge.id)
        assert keep.signature() != before
        assert dict(keep.signature()[1])["age"] == 30

    def test_copies_do_not_share_signature_state(self, empty_graph):
        node = empty_graph.add_node("Person", {"name": "ada"})
        node.signature()
        clone = node.copy()
        assert clone.signature() == node.signature()
        assert clone == node
