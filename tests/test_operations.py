"""Unit tests for the seven repair operations."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidRuleError, RepairExecutionError
from repro.graph import PropertyGraph
from repro.matching import Match, Pattern, PatternEdge, PatternNode
from repro.rules import (
    AddEdge,
    AddNode,
    DeleteEdge,
    DeleteNode,
    ExecutionContext,
    MergeNodes,
    UpdateEdge,
    UpdateNode,
    ValueRef,
)


@pytest.fixture
def bound_context():
    """A small graph with a match binding x -> person, y -> city, e -> bornIn edge."""
    graph = PropertyGraph()
    person = graph.add_node("Person", {"name": "Ada", "born": 1815})
    city = graph.add_node("City", {"name": "London", "country": "UK"})
    edge = graph.add_edge(person.id, city.id, "bornIn", {"confidence": 1.0})
    pattern = Pattern(nodes=[PatternNode("x", "Person"), PatternNode("y", "City")],
                      edges=[PatternEdge("x", "y", "bornIn", variable="e")],
                      name="ctx")
    match = Match(pattern=pattern, node_bindings={"x": person.id, "y": city.id},
                  edge_bindings={"e": edge.id})
    return ExecutionContext(graph=graph, match=match), graph, person, city, edge


class TestAddNode:
    def test_creates_node_and_binds_variable(self, bound_context):
        context, graph, *_ = bound_context
        AddNode(variable="z", label="Country", properties={"name": "UK"}).apply(context)
        assert "z" in context.new_nodes
        assert graph.node(context.new_nodes["z"]).label == "Country"

    def test_value_ref_copies_from_match(self, bound_context):
        context, graph, *_ = bound_context
        AddNode(variable="z", label="Country",
                properties={"name": ValueRef("y", "country")}).apply(context)
        assert graph.node(context.new_nodes["z"]).properties["name"] == "UK"

    def test_rebinding_existing_variable_fails(self, bound_context):
        context, *_ = bound_context
        with pytest.raises(RepairExecutionError):
            AddNode(variable="x", label="Country").apply(context)


class TestAddEdge:
    def test_creates_edge_between_matched_nodes(self, bound_context):
        context, graph, person, city, _ = bound_context
        AddEdge(source="x", target="y", label="livesIn").apply(context)
        assert graph.has_edge_between(person.id, city.id, "livesIn")

    def test_skip_if_present_avoids_duplicates(self, bound_context):
        context, graph, person, city, _ = bound_context
        AddEdge(source="x", target="y", label="bornIn").apply(context)
        assert len(graph.edges_between(person.id, city.id, "bornIn")) == 1
        AddEdge(source="x", target="y", label="bornIn", skip_if_present=False).apply(context)
        assert len(graph.edges_between(person.id, city.id, "bornIn")) == 2

    def test_can_target_newly_created_node(self, bound_context):
        context, graph, person, *_ = bound_context
        AddNode(variable="z", label="Country").apply(context)
        AddEdge(source="x", target="z", label="nationality").apply(context)
        assert graph.has_edge_between(person.id, context.new_nodes["z"], "nationality")

    def test_unbound_variable_fails(self, bound_context):
        context, *_ = bound_context
        with pytest.raises(RepairExecutionError):
            AddEdge(source="x", target="missing", label="r").apply(context)


class TestDeleteOperations:
    def test_delete_edge_by_variable(self, bound_context):
        context, graph, _, _, edge = bound_context
        DeleteEdge(edge_variable="e").apply(context)
        assert not graph.has_edge(edge.id)
        # deleting again is a silent no-op (another repair may have raced it)
        DeleteEdge(edge_variable="e").apply(context)

    def test_delete_edge_by_endpoints(self, bound_context):
        context, graph, person, city, _ = bound_context
        DeleteEdge(source="x", target="y", label="bornIn").apply(context)
        assert not graph.has_edge_between(person.id, city.id, "bornIn")

    def test_delete_edge_requires_target_specification(self):
        with pytest.raises(InvalidRuleError):
            DeleteEdge()

    def test_delete_node_removes_incident_edges(self, bound_context):
        context, graph, person, _, edge = bound_context
        DeleteNode(variable="x").apply(context)
        assert not graph.has_node(person.id)
        assert not graph.has_edge(edge.id)


class TestUpdateOperations:
    def test_update_node_set_copy_and_remove(self, bound_context):
        context, graph, person, *_ = bound_context
        UpdateNode(variable="x", set_properties={"country": ValueRef("y", "country")},
                   remove_keys=("born",)).apply(context)
        properties = graph.node(person.id).properties
        assert properties["country"] == "UK"
        assert "born" not in properties

    def test_update_node_relabel(self, bound_context):
        context, graph, person, *_ = bound_context
        UpdateNode(variable="x", new_label="Author").apply(context)
        assert graph.node(person.id).label == "Author"

    def test_update_edge_properties_and_relabel(self, bound_context):
        context, graph, _, _, edge = bound_context
        UpdateEdge(edge_variable="e", set_properties={"confidence": 0.9},
                   new_label="birthPlace").apply(context)
        assert graph.edge(edge.id).properties["confidence"] == 0.9
        assert graph.edge(edge.id).label == "birthPlace"

    def test_update_on_deleted_target_fails(self, bound_context):
        context, graph, person, *_ = bound_context
        graph.remove_node(person.id)
        with pytest.raises(RepairExecutionError):
            UpdateNode(variable="x", set_properties={"a": 1}).apply(context)


class TestMergeNodes:
    def test_merge_via_operation(self):
        graph = PropertyGraph()
        a = graph.add_node("Person", {"name": "Ada"})
        b = graph.add_node("Person", {"name": "Ada", "extra": True})
        city = graph.add_node("City")
        graph.add_edge(a.id, city.id, "bornIn")
        graph.add_edge(b.id, city.id, "bornIn")
        pattern = Pattern(nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                                 PatternNode("c", "City")],
                          edges=[PatternEdge("a", "c", "bornIn"),
                                 PatternEdge("b", "c", "bornIn")], name="dup")
        match = Match(pattern=pattern,
                      node_bindings={"a": a.id, "b": b.id, "c": city.id})
        context = ExecutionContext(graph=graph, match=match)
        MergeNodes(keep="a", merge="b").apply(context)
        assert not graph.has_node(b.id)
        assert graph.node(a.id).properties["extra"] is True
        assert len(graph.edges_between(a.id, city.id, "bornIn")) == 1

    def test_merge_with_vanished_node_is_noop(self, bound_context):
        context, graph, person, city, _ = bound_context
        graph.remove_node(city.id)
        MergeNodes(keep="x", merge="y").apply(context)  # must not raise
        assert graph.has_node(person.id)


class TestEffectSummaries:
    def test_variable_and_label_summaries(self):
        operation = AddEdge(source="x", target="y", label="nationality",
                            properties={"src": ValueRef("e", "provenance")})
        assert operation.variables_read() == {"x", "y", "e"}
        assert operation.added_edge_labels() == {"nationality"}
        assert AddNode(variable="z", label="Country").variables_introduced() == {"z"}
        assert DeleteNode(variable="x").removed_node_variables() == {"x"}
        assert DeleteEdge(edge_variable="e").removed_edge_variables() == {"e"}
        assert MergeNodes(keep="a", merge="b").removed_node_variables() == {"b"}

    def test_describe_is_informative(self):
        assert "nationality" in AddEdge(source="x", target="y", label="nationality").describe()
        assert "MERGE" in MergeNodes(keep="a", merge="b").describe()
