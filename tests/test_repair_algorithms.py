"""Tests for the naive and fast repair algorithms and the engine facade.

The central property: **both algorithms reach a violation-free fixpoint and
produce equivalent repairs** (same fact-level outcome) on every workload.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_workload
from repro.exceptions import InconsistentRuleSetError
from repro.metrics import graph_facts, repair_quality
from repro.repair import (
    EngineConfig,
    FastRepairConfig,
    FastRepairer,
    NaiveRepairConfig,
    NaiveRepairer,
    RepairEngine,
    detect_violations,
    repair_graph,
)
from repro.rules import RuleSet, conflict_rule, incompleteness_rule


class TestNaiveRepairer:
    def test_reaches_fixpoint_on_tiny_kg(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        report = NaiveRepairer().repair(graph, kg_rules)
        assert report.reached_fixpoint
        assert report.remaining_violations == 0
        assert report.repairs_applied > 0
        assert len(detect_violations(graph, kg_rules)) == 0
        assert report.final_nodes == graph.num_nodes
        assert report.method == "naive"

    def test_max_repairs_budget_is_respected(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        report = NaiveRepairer(NaiveRepairConfig(max_repairs=2)).repair(graph, kg_rules)
        assert report.repairs_applied <= 2
        assert not report.reached_fixpoint

    def test_report_describes_itself(self, tiny_kg, kg_rules):
        report = NaiveRepairer().repair(tiny_kg.copy(), kg_rules)
        text = report.describe()
        assert "naive" in text and "fixpoint" in text
        as_dict = report.as_dict()
        assert as_dict["repairs_applied"] == report.repairs_applied
        assert "timings" in as_dict


class TestFastRepairer:
    def test_reaches_fixpoint_on_tiny_kg(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        report = FastRepairer().repair(graph, kg_rules)
        assert report.reached_fixpoint
        assert report.remaining_violations == 0
        assert len(detect_violations(graph, kg_rules)) == 0
        assert report.seeded_searches > 0
        assert report.timings.get("incremental-maintenance") >= 0.0

    def test_optimisations_can_be_disabled(self, tiny_kg, kg_rules):
        for config in (FastRepairConfig(use_candidate_index=False),
                       FastRepairConfig(use_decomposition=False)):
            graph = tiny_kg.copy()
            report = FastRepairer(config).repair(graph, kg_rules)
            assert report.reached_fixpoint
            assert len(detect_violations(graph, kg_rules)) == 0

    def test_max_repairs_budget(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        report = FastRepairer(FastRepairConfig(max_repairs=1)).repair(graph, kg_rules)
        assert report.repairs_applied == 1
        assert not report.reached_fixpoint


class TestEquivalenceOfAlgorithms:
    @pytest.mark.parametrize("domain", ["kg", "movies", "social"])
    def test_fast_and_naive_reach_equivalent_fixpoints(self, domain):
        workload = build_workload(domain, scale=40, error_rate=0.08, seed=11)
        fast_graph, fast_report = repair_graph(workload.dirty, workload.rules, "fast")
        naive_graph, naive_report = repair_graph(workload.dirty, workload.rules, "naive")

        assert fast_report.reached_fixpoint and naive_report.reached_fixpoint
        assert len(detect_violations(fast_graph, workload.rules)) == 0
        assert len(detect_violations(naive_graph, workload.rules)) == 0
        # identical fact-level outcome
        assert graph_facts(fast_graph) == graph_facts(naive_graph)
        # and identical quality against ground truth
        fast_quality = repair_quality(workload.clean, workload.dirty, fast_graph,
                                      workload.ground_truth)
        naive_quality = repair_quality(workload.clean, workload.dirty, naive_graph,
                                       workload.ground_truth)
        assert fast_quality.f1 == pytest.approx(naive_quality.f1)

    def test_repairing_a_clean_graph_changes_nothing(self, small_kg_dataset):
        clean = small_kg_dataset.clean
        repaired, report = repair_graph(clean, small_kg_dataset.rules, "fast")
        assert report.repairs_applied == 0
        assert graph_facts(repaired) == graph_facts(clean)

    def test_repair_is_idempotent(self, small_kg_workload):
        rules = small_kg_workload.rules
        once, first_report = repair_graph(small_kg_workload.dirty, rules, "fast")
        twice, second_report = repair_graph(once, rules, "fast")
        assert first_report.repairs_applied > 0
        assert second_report.repairs_applied == 0
        assert graph_facts(once) == graph_facts(twice)


class TestRepairEngine:
    def test_repair_copy_leaves_input_untouched(self, tiny_kg, kg_rules):
        before = graph_facts(tiny_kg)
        engine = RepairEngine(EngineConfig.fast())
        repaired, report = engine.repair_copy(tiny_kg, kg_rules)
        assert graph_facts(tiny_kg) == before
        assert report.repairs_applied > 0
        assert repaired.name.endswith("-repaired")

    def test_in_place_repair_mutates_input(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        _, report = repair_graph(graph, kg_rules, method="fast", in_place=True)
        assert report.repairs_applied > 0
        assert len(detect_violations(graph, kg_rules)) == 0

    def test_unknown_method_rejected(self, tiny_kg, kg_rules):
        engine = RepairEngine(EngineConfig(method="quantum"))
        with pytest.raises(ValueError):
            engine.repair(tiny_kg.copy(), kg_rules)

    def test_ablation_configs(self):
        assert EngineConfig.ablation("none").use_candidate_index
        assert not EngineConfig.ablation("index").use_candidate_index
        assert not EngineConfig.ablation("decomposition").use_decomposition
        assert EngineConfig.ablation("incremental").method == "naive"
        with pytest.raises(ValueError):
            EngineConfig.ablation("warp-drive")

    def test_consistency_gate_warns_or_raises(self, tiny_kg):
        adder = (incompleteness_rule("always-add")
                 .node("a", "Person").node("b", "City")
                 .edge("a", "b", "bornIn")
                 .missing_edge("a", "b", "derived")
                 .add_edge("a", "b", "derived")
                 .build())
        deleter = (conflict_rule("always-delete")
                   .node("a", "Person").node("b", "City")
                   .edge("a", "b", "derived", variable="e")
                   .delete_edge(edge_variable="e")
                   .build())
        inconsistent = RuleSet([adder, deleter], name="oscillating")

        warning_engine = RepairEngine(EngineConfig.fast(check_consistency=True,
                                                        max_repairs=30))
        with pytest.warns(UserWarning):
            warning_engine.repair(tiny_kg.copy(), inconsistent)

        strict_engine = RepairEngine(EngineConfig.fast(require_consistency=True))
        with pytest.raises(InconsistentRuleSetError):
            strict_engine.repair(tiny_kg.copy(), inconsistent)

    def test_oscillating_rules_terminate_without_fixpoint(self, tiny_kg):
        """An inconsistent (oscillating) pair must not loop forever: the fast
        repairer handles each violation instance at most once, so the run ends
        and honestly reports that no fixpoint was reached."""
        adder = (incompleteness_rule("always-add")
                 .node("a", "Person").node("b", "City")
                 .edge("a", "b", "bornIn")
                 .missing_edge("a", "b", "derived")
                 .add_edge("a", "b", "derived")
                 .build())
        deleter = (conflict_rule("always-delete")
                   .node("a", "Person").node("b", "City")
                   .edge("a", "b", "derived", variable="e")
                   .delete_edge(edge_variable="e")
                   .build())
        rules = RuleSet([adder, deleter], name="oscillating")
        graph = tiny_kg.copy()
        report = FastRepairer(FastRepairConfig(max_repairs=200)).repair(graph, rules)
        assert report.repairs_applied < 200
        assert not report.reached_fixpoint
        assert report.remaining_violations > 0
