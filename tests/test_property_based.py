"""Property-based tests (hypothesis) for the core data structures and invariants.

Covered invariants:

* property-graph mutations keep the internal indexes consistent with a
  recomputed ground truth, and JSON serialisation round-trips;
* the optimised matchers (index / decomposition) agree with the naive matcher
  and with the declarative ``check_match`` oracle on random graphs;
* incremental match maintenance agrees with from-scratch re-enumeration after
  random mutation batches;
* repairing random corrupted knowledge graphs reaches a violation-free
  fixpoint, never lowers quality below the do-nothing baseline, and the fast
  and naive algorithms agree on the resulting facts.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import KGConfig, generate_knowledge_graph, knowledge_graph_error_profile
from repro.errors import inject_errors
from repro.graph import ChangeRecorder, PropertyGraph, loads_json, dumps_json
from repro.matching import (
    CandidateIndex,
    IncrementalMatcher,
    Matcher,
    MatcherConfig,
    Pattern,
    PatternEdge,
    PatternNode,
    VF2Matcher,
)
from repro.metrics import graph_facts, repair_quality
from repro.repair import detect_violations, repair_graph
from repro.rules import knowledge_graph_rules

NODE_LABELS = ("A", "B", "C")
EDGE_LABELS = ("r", "s")


@st.composite
def random_graphs(draw, max_nodes: int = 12, max_edges: int = 24) -> PropertyGraph:
    """Small random labelled multigraphs."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(st.lists(st.sampled_from(NODE_LABELS), min_size=num_nodes,
                           max_size=num_nodes))
    graph = PropertyGraph(name="random")
    node_ids = [graph.add_node(label, {"value": index % 3}).id
                for index, label in enumerate(labels)]
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(num_edges):
        source = draw(st.sampled_from(node_ids))
        target = draw(st.sampled_from(node_ids))
        label = draw(st.sampled_from(EDGE_LABELS))
        graph.add_edge(source, target, label)
    return graph


@st.composite
def random_patterns(draw, max_variables: int = 3) -> Pattern:
    """Small connected random patterns over the same label alphabet."""
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    nodes = []
    for index in range(num_variables):
        label = draw(st.sampled_from(NODE_LABELS + (None,)))
        nodes.append(PatternNode(f"v{index}", label))
    edges = []
    # chain edges guarantee connectivity; direction and label are random
    for index in range(1, num_variables):
        label = draw(st.sampled_from(EDGE_LABELS + (None,)))
        if draw(st.booleans()):
            edges.append(PatternEdge(f"v{index - 1}", f"v{index}", label))
        else:
            edges.append(PatternEdge(f"v{index}", f"v{index - 1}", label))
    # optionally one extra edge creating a cycle / parallel constraint
    if num_variables >= 2 and draw(st.booleans()):
        edges.append(PatternEdge("v0", f"v{num_variables - 1}",
                                 draw(st.sampled_from(EDGE_LABELS))))
    return Pattern(nodes=nodes, edges=edges, name="random-pattern")


class TestGraphInvariants:
    @given(graph=random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_label_indexes_match_recount(self, graph):
        recount_nodes = Counter(node.label for node in graph.nodes())
        for label, expected in recount_nodes.items():
            assert graph.count_nodes_with_label(label) == expected
        recount_edges = Counter(edge.label for edge in graph.edges())
        for label, expected in recount_edges.items():
            assert graph.count_edges_with_label(label) == expected
        total_out = sum(graph.out_degree(node_id) for node_id in graph.node_ids())
        assert total_out == graph.num_edges

    @given(graph=random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip(self, graph):
        assert loads_json(dumps_json(graph)).structurally_equal(graph)

    @given(graph=random_graphs(), data=st.data())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_node_removal_keeps_adjacency_consistent(self, graph, data):
        if graph.num_nodes == 0:
            return
        victim = data.draw(st.sampled_from(graph.node_ids()))
        graph.remove_node(victim)
        for edge in graph.edges():
            assert graph.has_node(edge.source) and graph.has_node(edge.target)
        assert victim not in graph


class TestMatcherEquivalence:
    @given(graph=random_graphs(), pattern=random_patterns())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_configurations_agree_and_satisfy_oracle(self, graph, pattern):
        naive = VF2Matcher(graph=graph, candidate_index=None, use_decomposition=False)
        expected = {match.key() for match in naive.find_matches(pattern)}

        index = CandidateIndex(graph)
        optimized = VF2Matcher(graph=graph, candidate_index=index, use_decomposition=True)
        actual = {match.key() for match in optimized.find_matches(pattern)}
        assert actual == expected

        for match in optimized.find_matches(pattern):
            assert pattern.check_match(graph, match.node_bindings)

    @given(graph=random_graphs(max_nodes=8, max_edges=14), pattern=random_patterns(),
           data=st.data())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_incremental_matches_equal_recomputation(self, graph, pattern, data):
        index = CandidateIndex(graph)
        index.attach()
        incremental = IncrementalMatcher(graph, candidate_index=index)
        store = incremental.register(pattern)
        recorder = ChangeRecorder()
        graph.add_listener(recorder)

        # a random batch of mutations
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            action = data.draw(st.sampled_from(["add_edge", "remove_edge", "add_node",
                                                "remove_node"]))
            if action == "add_edge" and graph.num_nodes:
                source = data.draw(st.sampled_from(graph.node_ids()))
                target = data.draw(st.sampled_from(graph.node_ids()))
                graph.add_edge(source, target, data.draw(st.sampled_from(EDGE_LABELS)))
            elif action == "remove_edge" and graph.num_edges:
                graph.remove_edge(data.draw(st.sampled_from(graph.edge_ids())))
            elif action == "add_node":
                graph.add_node(data.draw(st.sampled_from(NODE_LABELS)))
            elif action == "remove_node" and graph.num_nodes > 1:
                graph.remove_node(data.draw(st.sampled_from(graph.node_ids())))

        incremental.apply_delta(recorder.drain())
        fresh = {match.key()
                 for match in VF2Matcher(graph=graph).find_matches(pattern)}
        assert {match.key() for match in store} == fresh


class TestRepairInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           error_rate=st.sampled_from([0.03, 0.08, 0.15]))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_repairing_random_corruptions_restores_consistency(self, seed, error_rate):
        rules = knowledge_graph_rules()
        clean = generate_knowledge_graph(KGConfig(num_persons=25, num_countries=3,
                                                  cities_per_country=2,
                                                  num_organizations=4, seed=seed))
        dirty, truth = inject_errors(clean, knowledge_graph_error_profile(),
                                     error_rate=error_rate, seed=seed + 1)

        fast_repaired, fast_report = repair_graph(dirty, rules, "fast")
        assert fast_report.reached_fixpoint
        assert len(detect_violations(fast_repaired, rules)) == 0

        quality = repair_quality(clean, dirty, fast_repaired, truth)
        baseline = repair_quality(clean, dirty, dirty.copy(), truth)
        assert quality.recall >= baseline.recall
        assert quality.precision >= 0.5

        naive_repaired, _ = repair_graph(dirty, rules, "naive")
        assert graph_facts(naive_repaired) == graph_facts(fast_repaired)
