"""Cross-process read replicas over the socket changefeed.

The acceptance bar: a replica in a *separate process* that connects to the
primary's :class:`~repro.durability.replication.ChangefeedServer`, catches
up, and serves match traffic returns **identical match results** to a
matcher over the primary graph — and keeps doing so as commits stream.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.api import RepairSession
from repro.exceptions import ReplicationError
from repro.graph.io import graph_to_dict
from repro.graph.property_graph import PropertyGraph
from repro.matching.matcher import Matcher, MatcherConfig
from repro.rules.grr import RuleSet
from repro.durability import ChangefeedServer, ReadReplica, replica_match_probe
from repro.service import GraphRepairService


def _exactly_equal(left: PropertyGraph, right: PropertyGraph) -> bool:
    a, b = graph_to_dict(left), graph_to_dict(right)
    a.pop("name", None)
    b.pop("name", None)
    return json.dumps(a, sort_keys=True, default=repr) \
        == json.dumps(b, sort_keys=True, default=repr)


def _match_keys(graph: PropertyGraph, patterns) -> dict[str, list]:
    with Matcher(graph, MatcherConfig.optimized(),
                 maintain_index=False) as matcher:
        return {pattern.name: sorted(repr(match.key()) for match in
                                     matcher.find_matches(pattern))
                for pattern in patterns}


class TestInProcessReplica:
    def test_replica_tracks_the_primary_exactly(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with RepairSession(graph, small_kg_workload.rules) as session, \
                ChangefeedServer() as server:
            server.publish("kg", session)
            with ReadReplica(server.address, "kg") as replica:
                assert _exactly_equal(replica.graph, graph)
                session.repair()
                session.apply(lambda g: g.add_node("City", {"name": "Kyiv"}))
                replica.catch_up(until_sequence=session.last_sequence,
                                 timeout=20)
                assert _exactly_equal(replica.graph, graph)
                assert replica.records_applied == session.last_sequence

    def test_snapshot_cut_is_race_free(self, small_kg_workload):
        """Commits racing the replica's subscription are neither lost nor
        double-applied: the snapshot cut dedupes by sequence."""
        graph = small_kg_workload.dirty.copy(name="kg")
        with RepairSession(graph, small_kg_workload.rules) as session, \
                ChangefeedServer() as server:
            server.publish("kg", session)
            stop = threading.Event()

            def traffic():
                index = 0
                while not stop.is_set():
                    session.apply(lambda g, i=index: g.add_node("P", {"i": i}))
                    index += 1

            writer = threading.Thread(target=traffic, daemon=True)
            writer.start()
            try:
                replicas = [ReadReplica(server.address, "kg")
                            for _ in range(3)]
            finally:
                stop.set()
                writer.join(timeout=20)
            target = session.last_sequence
            for replica in replicas:
                replica.catch_up(until_sequence=target, timeout=20)
                # replay past the cut must agree element-for-element
                frozen = graph.copy(name="frozen")
                replica.catch_up(timeout=5)  # drain any idle tail
                assert _exactly_equal(replica.graph, frozen)
                replica.close()

    def test_unknown_tenant_refused(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with RepairSession(graph, small_kg_workload.rules) as session, \
                ChangefeedServer() as server:
            server.publish("kg", session)
            with pytest.raises(ReplicationError, match="unknown tenant"):
                ReadReplica(server.address, "nope")

    def test_two_tenants_stream_independently(self):
        left, right = PropertyGraph(name="l"), PropertyGraph(name="r")
        with RepairSession(left, RuleSet([])) as first, \
                RepairSession(right, RuleSet([])) as second, \
                ChangefeedServer() as server:
            server.publish("l", first)
            server.publish("r", second)
            with ReadReplica(server.address, "l") as replica_l, \
                    ReadReplica(server.address, "r") as replica_r:
                first.apply(lambda g: g.add_node("A"))
                second.apply(lambda g: g.add_node("B"))
                second.apply(lambda g: g.add_node("B"))
                replica_l.catch_up(until_sequence=1, timeout=20)
                replica_r.catch_up(until_sequence=2, timeout=20)
                assert replica_l.graph.num_nodes == 1
                assert replica_r.graph.num_nodes == 2

    def test_match_results_equal_primary(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        patterns = [rule.pattern for rule in small_kg_workload.rules]
        with RepairSession(graph, small_kg_workload.rules) as session, \
                ChangefeedServer() as server:
            server.publish("kg", session)
            with ReadReplica(server.address, "kg") as replica:
                session.repair()
                replica.catch_up(until_sequence=session.last_sequence,
                                 timeout=20)
                assert replica.match_keys(patterns) \
                    == _match_keys(graph, patterns)


class TestScopedReplica:
    def test_scope_serves_its_slice_and_adopts_created_nodes(self):
        graph = PropertyGraph(name="kg")
        hub = graph.add_node("City", {"name": "hub"}).id
        other = graph.add_node("City", {"name": "elsewhere"}).id
        with RepairSession(graph, RuleSet([])) as session, \
                ChangefeedServer() as server:
            server.publish("kg", session)
            with ReadReplica(server.address, "kg", scope={hub}) as replica:
                assert replica.graph.num_nodes == 1
                session.apply(lambda g: g.update_node(hub, {"pop": 9}))
                # a created node wired to the slice is adopted, no rebind
                session.apply(lambda g: g.add_edge(
                    g.add_node("Person", {}).id, hub, "livesIn"))
                # irrelevant traffic is filtered out
                session.apply(lambda g: g.update_node(other, {"pop": 1}))
                replica.catch_up(until_sequence=session.last_sequence,
                                 timeout=20)
                assert replica.rebinds == 0
                assert replica.graph.num_nodes == 2
                assert replica.graph.node(hub).properties["pop"] == 9
                assert not replica.graph.has_node(other)

    def test_boundary_crossing_edge_triggers_transparent_rebind(self):
        graph = PropertyGraph(name="kg")
        hub = graph.add_node("City", {"name": "hub"}).id
        other = graph.add_node("City", {"name": "elsewhere"}).id
        with RepairSession(graph, RuleSet([])) as session, \
                ChangefeedServer() as server:
            server.publish("kg", session)
            with ReadReplica(server.address, "kg", scope={hub}) as replica:
                session.apply(lambda g: g.add_edge(hub, other, "twinnedWith"))
                session.apply(lambda g: g.update_node(hub, {"pop": 2}))
                replica.catch_up(until_sequence=session.last_sequence,
                                 timeout=20)
                assert replica.rebinds >= 1
                # after the rebind the slice re-derives (and the boundary
                # edge's far endpoint joined it, so the edge is visible now)
                assert replica.graph.node(hub).properties["pop"] == 2


class TestCrossProcessReplica:
    def test_separate_process_replica_serves_identical_matches(
            self, small_kg_workload):
        """The ISSUE acceptance bar: a real second process connects, catches
        up, and its match results equal the primary's."""
        graph = small_kg_workload.dirty.copy(name="kg")
        rules = small_kg_workload.rules
        with RepairSession(graph, rules) as session, \
                ChangefeedServer() as server:
            server.publish("kg", session)
            session.repair()
            session.apply(lambda g: g.add_node("City", {"name": "Lima"}))
            target = session.last_sequence
            context = multiprocessing.get_context("spawn")
            results = context.Queue()
            probe = context.Process(
                target=replica_match_probe,
                args=(server.address, "kg", list(rules), target, results))
            probe.start()
            try:
                status, payload = results.get(timeout=120)
            finally:
                probe.join(timeout=30)
                if probe.is_alive():
                    probe.kill()
                    probe.join(timeout=30)
            assert status == "ok", payload
            assert payload["sequence"] == target
            assert payload["nodes"] == graph.num_nodes
            assert payload["edges"] == graph.num_edges
            patterns = [rule.pattern for rule in rules]
            assert payload["match_keys"] == _match_keys(graph, patterns)


class TestServiceIntegration:
    def test_durable_tenant_plus_replica_after_restart(self, tmp_path,
                                                       small_kg_workload):
        """The full story: durable serve, clean stop, restore, then a read
        replica over the restored tenant serves the same matches."""
        from repro.service import DurabilityConfig

        config = DurabilityConfig(dir=tmp_path, snapshot_every=6, fsync=False)
        rules = small_kg_workload.rules
        patterns = [rule.pattern for rule in rules]
        with GraphRepairService() as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          rules, durable=config)
            service.repair("kg")
        with GraphRepairService() as service:
            session = service.restore("kg", rules, durable=config)
            with ChangefeedServer() as server:
                server.publish("kg", session,
                               base_sequence=service.durability(
                                   "kg").base_sequence)
                with ReadReplica(server.address, "kg") as replica:
                    service.apply("kg",
                                  lambda g: g.add_node("City",
                                                       {"name": "Bern"}))
                    replica.catch_up(
                        until_sequence=service.durability(
                            "kg").global_sequence, timeout=20)
                    assert _exactly_equal(replica.graph, session.graph)
                    assert replica.match_keys(patterns) \
                        == _match_keys(session.graph, patterns)
