"""Tests for error injection, ground truth, and the dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    KGConfig,
    RuleGenConfig,
    available_domains,
    build_workload,
    generate_knowledge_graph,
    generate_movie_graph,
    generate_rules,
    generate_social_graph,
    get_domain,
    knowledge_graph_error_profile,
    load_dataset,
)
from repro.errors import ErrorInjector, InjectionConfig, inject_errors
from repro.exceptions import DatasetError
from repro.graph import compute_statistics, functional_predicate_candidates
from repro.metrics import graph_facts
from repro.repair import detect_violations
from repro.rules import Semantics


class TestGenerators:
    def test_kg_generator_is_deterministic_and_clean(self):
        first = generate_knowledge_graph(KGConfig(num_persons=40, seed=5))
        second = generate_knowledge_graph(KGConfig(num_persons=40, seed=5))
        assert graph_facts(first) == graph_facts(second)
        from repro.rules import knowledge_graph_rules

        assert len(detect_violations(first, knowledge_graph_rules())) == 0

    def test_kg_generator_shape(self):
        graph = generate_knowledge_graph(KGConfig(num_persons=50, num_countries=4,
                                                  cities_per_country=3, seed=0))
        stats = compute_statistics(graph)
        assert stats.node_label_counts["Person"] == 50
        assert stats.node_label_counts["Country"] == 4
        assert stats.node_label_counts["City"] == 12
        assert stats.edge_label_counts["bornIn"] == 50
        assert stats.edge_label_counts["capitalOf"] == 4
        # every clean edge carries a confidence for the resolution policy
        assert all(edge.get("confidence") == 1.0 for edge in graph.edges())
        assert "bornIn" in functional_predicate_candidates(graph)

    def test_movie_and_social_generators_are_clean(self, small_movie_workload,
                                                   small_social_workload):
        assert len(detect_violations(small_movie_workload.clean,
                                     small_movie_workload.rules)) == 0
        assert len(detect_violations(small_social_workload.clean,
                                     small_social_workload.rules)) == 0

    def test_scaled_configs_grow_with_scale(self):
        small = KGConfig.scaled(50)
        large = KGConfig.scaled(2000)
        assert large.num_countries >= small.num_countries
        assert large.num_organizations > small.num_organizations

    def test_social_follows_are_implied_by_likes(self):
        graph = generate_social_graph()
        from repro.datasets.social import _removable_social_edge

        implied = [edge for edge in graph.edges_with_label("likes")]
        assert implied  # likes exist and each implies a follows edge (rule is satisfied)


class TestErrorInjection:
    def test_injection_reaches_requested_volume_and_kinds(self, small_kg_dataset):
        dirty, truth = inject_errors(small_kg_dataset.clean,
                                     small_kg_dataset.error_profile,
                                     error_rate=0.1, seed=1)
        assert len(truth) > 0
        counts = truth.counts_by_kind()
        assert set(counts) == {"incompleteness", "conflict", "redundancy"}
        assert all(count > 0 for count in counts.values())
        # the clean graph is untouched, the dirty one differs
        assert graph_facts(dirty) != graph_facts(small_kg_dataset.clean)

    def test_injection_is_deterministic(self, small_kg_dataset):
        first = inject_errors(small_kg_dataset.clean, small_kg_dataset.error_profile,
                              error_rate=0.05, seed=9)
        second = inject_errors(small_kg_dataset.clean, small_kg_dataset.error_profile,
                               error_rate=0.05, seed=9)
        assert graph_facts(first[0]) == graph_facts(second[0])
        assert len(first[1]) == len(second[1])

    def test_every_injected_error_is_detectable(self, small_kg_dataset):
        dirty, truth = inject_errors(small_kg_dataset.clean,
                                     small_kg_dataset.error_profile,
                                     error_rate=0.05, seed=2)
        detection = detect_violations(dirty, small_kg_dataset.rules)
        per_semantics = detection.per_semantics()
        for kind, injected in truth.counts_by_kind().items():
            if injected:
                assert per_semantics.get(kind, 0) > 0, f"no violation detected for {kind}"

    def test_ground_truth_fact_deltas_match_graph_difference(self, small_kg_dataset):
        from repro.metrics.facts import fact_delta

        dirty, truth = inject_errors(small_kg_dataset.clean,
                                     small_kg_dataset.error_profile,
                                     error_rate=0.05, seed=4)
        added, removed = fact_delta(graph_facts(small_kg_dataset.clean),
                                    graph_facts(dirty))
        recorded_added = truth.all_added_facts()
        recorded_removed = truth.all_removed_facts()
        # every recorded fact shows up in the actual graph delta
        for fact in recorded_added:
            assert added.get(fact, 0) >= 1
        for fact in recorded_removed:
            assert removed.get(fact, 0) >= 1

    def test_mix_controls_error_classes(self, small_kg_dataset):
        config = InjectionConfig(error_rate=0.05, mix={"conflict": 1.0}, seed=0)
        injector = ErrorInjector(small_kg_dataset.error_profile, config)
        _, truth = injector.corrupt(small_kg_dataset.clean)
        assert set(truth.counts_by_kind()) == {"conflict"}
        assert truth.by_kind(Semantics.CONFLICT)
        assert not truth.by_kind(Semantics.REDUNDANCY)

    def test_injected_conflict_edges_have_lower_confidence(self, small_kg_dataset):
        from repro.errors import INJECTED_CONFIDENCE

        config = InjectionConfig(error_rate=0.05, mix={"conflict": 1.0}, seed=0)
        dirty, truth = ErrorInjector(small_kg_dataset.error_profile,
                                     config).corrupt(small_kg_dataset.clean)
        low_confidence = [edge for edge in dirty.edges()
                          if edge.get("confidence") == INJECTED_CONFIDENCE]
        assert len(low_confidence) == len(truth)

    def test_in_place_injection(self, small_kg_dataset):
        clone = small_kg_dataset.clean.copy()
        dirty, _ = ErrorInjector(small_kg_dataset.error_profile,
                                 InjectionConfig(error_rate=0.02)).corrupt(clone,
                                                                           in_place=True)
        assert dirty is clone

    def test_unknown_error_kind_rejected(self, small_kg_dataset):
        config = InjectionConfig(mix={"gremlins": 1.0})
        with pytest.raises(ValueError):
            ErrorInjector(small_kg_dataset.error_profile, config).corrupt(
                small_kg_dataset.clean)


class TestRegistryAndWorkloads:
    def test_available_domains(self):
        assert available_domains() == ["kg", "movies", "social"]
        assert get_domain("kg").name == "kg"
        with pytest.raises(DatasetError):
            get_domain("nope")
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_build_workload_bundles_everything(self):
        workload = build_workload("kg", scale=40, error_rate=0.1, seed=2)
        assert workload.clean.num_nodes > 0
        assert workload.dirty.num_nodes >= workload.clean.num_nodes
        assert len(workload.ground_truth) > 0
        assert workload.rules.names()
        assert workload.error_rate == 0.1

    def test_same_seed_same_workload(self):
        first = build_workload("movies", scale=30, error_rate=0.05, seed=5)
        second = build_workload("movies", scale=30, error_rate=0.05, seed=5)
        assert graph_facts(first.dirty) == graph_facts(second.dirty)


class TestRuleGeneration:
    def test_generated_rules_are_valid_and_sized(self, small_kg_dataset):
        rules = generate_rules(small_kg_dataset.clean, RuleGenConfig(num_rules=6, seed=3))
        assert len(rules) == 6
        labels = small_kg_dataset.clean.edge_labels()
        for rule in rules:
            assert rule.required_edge_labels() <= labels | {"*"} or rule.missing is not None

    def test_generated_conflict_rules_use_functional_predicates(self, small_kg_dataset):
        rules = generate_rules(small_kg_dataset.clean,
                               RuleGenConfig(num_rules=10, conflict_share=1.0,
                                             redundancy_share=0.0,
                                             incompleteness_share=0.0, seed=0))
        functional = functional_predicate_candidates(small_kg_dataset.clean)
        for rule in rules:
            if rule.semantics is Semantics.CONFLICT:
                assert rule.required_edge_labels() <= functional

    def test_generated_conflict_and_redundancy_rules_are_silent_on_clean_data(
            self, small_kg_dataset):
        rules = generate_rules(small_kg_dataset.clean,
                               RuleGenConfig(num_rules=8, conflict_share=0.5,
                                             redundancy_share=0.5,
                                             incompleteness_share=0.0, seed=1))
        detection = detect_violations(small_kg_dataset.clean, rules)
        assert len(detection) == 0  # clean data has no functional conflicts or duplicates

    def test_planted_inconsistency_is_flagged(self, small_kg_dataset):
        from repro.analysis import ConsistencyVerdict, check_consistency

        rules = generate_rules(small_kg_dataset.clean,
                               RuleGenConfig(num_rules=4, plant_inconsistent_pair=True,
                                             seed=0))
        report = check_consistency(rules)
        assert report.verdict is ConsistencyVerdict.INCONSISTENT

    def test_rule_generation_requires_edges(self):
        from repro.graph import PropertyGraph

        with pytest.raises(ValueError):
            generate_rules(PropertyGraph("empty"), RuleGenConfig(num_rules=2))
