"""Tests for the sorted value buckets (range/membership pushdown layer).

Covers:

* :func:`variable_pushdowns` — range predicates, literal range comparisons,
  ``IN`` membership, and cross-variable range comparisons (mirrored per
  orientation) compile into the new spec fields; ``NOT_IN``, unorderable
  range constants, and NaN stay residual-only;
* :meth:`CandidateIndex.range_bucket` / :meth:`membership_bucket` semantics —
  bisect-exact slices per orderable type class, the fuzzy/unhashable side
  pools always included, ``None`` for unanswerable probes;
* incremental maintenance: the hypothesis mirror of the PR-5 value-bucket
  integrity test, asserting :meth:`check_sorted_integrity` and probe-vs-fresh
  agreement after random mutation sequences (including a rebuild);
* indexed == unindexed matcher equivalence with range/membership shapes,
  including the empty-range dead-branch prune;
* the ``one_of`` / ``not_one_of`` constructors accepting any iterable,
  deduplicating, and tolerating unhashable members.
"""

from __future__ import annotations

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.registry import load_dataset
from repro.graph import PropertyGraph
from repro.matching import (
    CandidateIndex,
    Comparison,
    ComparisonOp,
    Pattern,
    PatternEdge,
    PatternNode,
    VF2Matcher,
    ge,
    gt,
    le,
    lt,
    one_of,
    not_one_of,
    variable_pushdowns,
)
from repro.matching.predicates import PredicateOp

from tests.test_incremental_index import _random_mutation


def _match_keys(graph, pattern, candidate_index):
    engine = VF2Matcher(graph=graph, candidate_index=candidate_index)
    return {match.key() for match in engine.find_matches(pattern)}, engine.stats


def _assert_equivalent(graph, pattern):
    indexed, _ = _match_keys(graph, pattern, CandidateIndex(graph))
    naive, _ = _match_keys(graph, pattern, None)
    assert indexed == naive
    return indexed


class TestRangePushdownCompilation:
    def test_all_range_predicates_compile(self):
        pattern = Pattern(
            nodes=[PatternNode("x", "Person",
                               predicates=(lt("age", 30), le("age", 30),
                                           gt("age", 20), ge("age", 20)))],
            name="ranges")
        spec = variable_pushdowns(pattern)["x"]
        assert spec.ranges == (("age", "lt", 30), ("age", "le", 30),
                               ("age", "gt", 20), ("age", "ge", 20))

    def test_literal_range_comparisons_compile(self):
        pattern = Pattern(
            nodes=[PatternNode("x", "Person")],
            comparisons=[Comparison(("x", "age"), ComparisonOp.GE,
                                    right_value=21, right_literal=True)],
            name="literal-range")
        spec = variable_pushdowns(pattern)["x"]
        assert spec.ranges == (("age", "ge", 21),)
        assert spec.literal == ()

    def test_unorderable_range_constants_stay_residual(self):
        pattern = Pattern(
            nodes=[PatternNode("x", "Person",
                               predicates=(gt("age", [1, 2]),
                                           lt("age", float("nan"))))],
            name="unorderable")
        assert variable_pushdowns(pattern) == {}

    def test_membership_compiles(self):
        pattern = Pattern(
            nodes=[PatternNode("x", "Person",
                               predicates=(one_of("country", ["FR", "DE"]),))],
            name="members")
        spec = variable_pushdowns(pattern)["x"]
        assert spec.members == (("country", ("FR", "DE")),)

    def test_not_in_and_unhashable_members_stay_residual(self):
        pattern = Pattern(
            nodes=[PatternNode("x", "Person",
                               predicates=(not_one_of("country", ["FR"]),
                                           one_of("tags", [["a"], ["b"]])))],
            name="not-pushable")
        assert variable_pushdowns(pattern) == {}

    def test_dynamic_range_comparisons_mirror_per_orientation(self):
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[Comparison(("a", "age"), ComparisonOp.LT, ("b", "age"))],
            name="dyn-range")
        specs = variable_pushdowns(pattern)
        assert specs["a"].dynamic_ranges == (("age", "lt", "b", "age"),)
        assert specs["b"].dynamic_ranges == (("age", "gt", "a", "age"),)
        assert "c" not in specs


class TestRangeBucketSemantics:
    def _graph(self):
        graph = PropertyGraph()
        graph.add_node("Person", {"age": 10}, node_id="p10")
        graph.add_node("Person", {"age": 20}, node_id="p20")
        graph.add_node("Person", {"age": 20.5}, node_id="p20f")
        graph.add_node("Person", {"age": 30}, node_id="p30")
        graph.add_node("Person", {"age": "thirty"}, node_id="pstr")
        graph.add_node("Person", {"age": [30]}, node_id="plist")
        graph.add_node("Person", {"age": (1, 2)}, node_id="ptuple")
        graph.add_node("Person", {"age": float("nan")}, node_id="pnan")
        graph.add_node("Person", {}, node_id="pnone")
        return graph

    def _index(self, graph):
        index = CandidateIndex(graph)
        index.ensure_sorted_index("Person", "age")
        return index

    def test_numeric_range_probes(self):
        index = self._index(self._graph())
        # side pools (unhashable list + fuzzy tuple/NaN) ride along in every
        # probe; the residual predicate check rejects them downstream
        side = {"plist", "ptuple", "pnan"}
        assert index.range_bucket("Person", "age", "lt", 20) == {"p10"} | side
        assert index.range_bucket("Person", "age", "le", 20) == {"p10", "p20"} | side
        assert index.range_bucket("Person", "age", "gt", 20) == {"p20f", "p30"} | side
        assert index.range_bucket("Person", "age", "ge", 20) == \
            {"p20", "p20f", "p30"} | side
        # strings live in the other type class: correctly absent from
        # numeric probes (str < int raises, i.e. the predicate is False)
        assert "pstr" not in index.range_bucket("Person", "age", "gt", 0)

    def test_string_range_probes_use_string_array(self):
        index = self._index(self._graph())
        bucket = index.range_bucket("Person", "age", "ge", "a")
        assert "pstr" in bucket
        assert "p10" not in bucket

    def test_unanswerable_probes_return_none(self):
        graph = self._graph()
        index = self._index(graph)
        assert index.range_bucket("Person", "age", "lt", float("nan")) is None
        assert index.range_bucket("Person", "age", "lt", (1,)) is None
        assert index.range_bucket("Person", "age", "lt", None) is None
        # unregistered pair / equality-only registration
        assert index.range_bucket("City", "age", "lt", 5) is None
        index.ensure_value_index("Person", "other")
        assert index.range_bucket("Person", "other", "lt", 5) is None

    def test_membership_probe_unions_equality_buckets(self):
        graph = self._graph()
        index = self._index(graph)
        bucket = index.membership_bucket("Person", "age", (10, 30, 99))
        assert bucket == {"p10", "p30", "plist"}  # unhashable pool included
        assert index.membership_bucket("Person", "age", ([1],)) is None

    def test_incremental_maintenance_tracks_mutations(self):
        graph = self._graph()
        index = self._index(graph)
        index.attach()
        graph.add_node("Person", {"age": 25}, node_id="p25")
        graph.update_node("p10", {"age": 40})
        graph.remove_node("p30")
        assert index.range_bucket("Person", "age", "lt", 30) == \
            {"p20", "p20f", "p25", "plist", "ptuple", "pnan"}
        assert index.check_sorted_integrity()
        index.rebuild()  # sorted arrays must survive a full rebuild
        assert index.check_sorted_integrity()
        assert index.range_bucket("Person", "age", "ge", 40) == \
            {"p10", "plist", "ptuple", "pnan"}
        index.detach()

    @given(seed=st.integers(min_value=0, max_value=10_000),
           mutation_count=st.integers(min_value=5, max_value=30))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sorted_buckets_survive_random_mutations(self, seed, mutation_count):
        """The incrementally-maintained sorted arrays must equal a rebuild
        from scratch after any mutation sequence (the sorted mirror of the
        PR-5 value-bucket integrity property)."""
        rng = random.Random(seed)
        graph = load_dataset("kg", scale=30, seed=seed).clean
        index = CandidateIndex(graph)
        index.attach()
        index.ensure_sorted_index("Person", "name")
        index.ensure_sorted_index(None, "name")
        index.ensure_sorted_index("City", "population")
        mutations = 0
        while mutations < mutation_count:
            if not _random_mutation(graph, rng):
                continue
            mutations += 1
        assert index.check_value_integrity()
        assert index.check_sorted_integrity()
        # the probe surface agrees with a from-scratch sorted index
        fresh = CandidateIndex(graph)
        fresh.ensure_sorted_index("Person", "name")
        for probe in ("A", "M", "Z", "name-5"):
            for op in ("lt", "le", "gt", "ge"):
                assert index.range_bucket("Person", "name", op, probe) == \
                    fresh.range_bucket("Person", "name", op, probe)
        index.detach()


class TestRangeMatcherEquivalence:
    def _graph(self):
        graph = PropertyGraph()
        city = graph.add_node("City", {"name": "x"}, node_id="c")
        for index, age in enumerate((10, 20, 30, "na", [5], float("nan"))):
            node_id = f"p{index}"
            graph.add_node("Person", {"age": age}, node_id=node_id)
            graph.add_edge(node_id, "c", "bornIn")
        return graph

    def test_unary_range_equivalence(self):
        graph = self._graph()
        for predicate in (lt("age", 25), le("age", 20), gt("age", 10),
                          ge("age", 30)):
            pattern = Pattern(
                nodes=[PatternNode("p", "Person", predicates=(predicate,)),
                       PatternNode("c", "City")],
                edges=[PatternEdge("p", "c", "bornIn")],
                name="unary-range")
            assert _assert_equivalent(graph, pattern)

    def test_empty_range_dead_branch(self):
        graph = self._graph()
        pattern = Pattern(
            nodes=[PatternNode("p", "Person", predicates=(gt("age", 1000),)),
                   PatternNode("c", "City")],
            edges=[PatternEdge("p", "c", "bornIn")],
            name="empty-range")
        # no orderable value exceeds 1000, but the side pools keep the probe
        # non-empty; equivalence is the contract either way
        assert _assert_equivalent(graph, pattern) == set()

    def test_membership_equivalence(self):
        graph = self._graph()
        pattern = Pattern(
            nodes=[PatternNode("p", "Person",
                               predicates=(one_of("age", [10, 30, 999]),)),
                   PatternNode("c", "City")],
            edges=[PatternEdge("p", "c", "bornIn")],
            name="membership")
        matches = _assert_equivalent(graph, pattern)
        assert len(matches) == 2

    def test_dynamic_range_equivalence(self):
        graph = self._graph()
        pattern = Pattern(
            nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
                   PatternNode("c", "City")],
            edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
            comparisons=[Comparison(("a", "age"), ComparisonOp.LT, ("b", "age"))],
            name="dyn-range-match")
        matches = _assert_equivalent(graph, pattern)
        assert len(matches) == 3  # (10,20), (10,30), (20,30)

    def test_range_counter_surfaces(self):
        graph = self._graph()
        pattern = Pattern(
            nodes=[PatternNode("p", "Person", predicates=(gt("age", 10),)),
                   PatternNode("c", "City")],
            edges=[PatternEdge("p", "c", "bornIn")],
            name="counter")
        _, stats = _match_keys(graph, pattern, CandidateIndex(graph))
        assert stats.range_bucket_candidates > 0


class TestOneOfConstructors:
    def test_accepts_any_iterable_and_dedupes(self):
        predicate = one_of("k", (value for value in ("a", "b", "a", "b")))
        assert predicate.value == ("a", "b")
        assert predicate.op is PredicateOp.IN

    def test_unhashable_members_kept_and_deduped(self):
        predicate = one_of("k", [["x"], ["x"], ["y"], "z", "z"])
        assert predicate.value == (["x"], ["y"], "z")
        assert predicate.evaluate({"k": ["y"]})
        assert not predicate.evaluate({"k": ["w"]})

    def test_not_one_of_mirrors(self):
        predicate = not_one_of("k", iter(["a", "a", "b"]))
        assert predicate.value == ("a", "b")
        assert predicate.evaluate({"k": "c"})
        assert not predicate.evaluate({"k": "a"})
