"""Unit tests for the repair building blocks: violations, detection, cost,
execution, and provenance."""

from __future__ import annotations

import pytest

from repro.matching import Matcher
from repro.repair import (
    DEFAULT_COST_MODEL,
    CostModel,
    RepairExecutor,
    Violation,
    ViolationDetector,
    ViolationStatus,
    detect_violations,
)
from repro.repair.violation import sort_key
from repro.rules import knowledge_graph_rules


class TestViolation:
    def _one_violation(self, graph, rules):
        detection = detect_violations(graph, rules)
        return detection.violations[0], detection

    def test_key_identity_and_properties(self, tiny_kg, kg_rules):
        violation, _ = self._one_violation(tiny_kg, kg_rules)
        same = Violation(rule=violation.rule, match=violation.match)
        assert violation.key() == same.key()
        assert violation.priority == violation.rule.priority
        assert violation.semantics is violation.rule.semantics
        assert violation.involved_node_ids()
        assert violation.status is ViolationStatus.PENDING
        assert violation.rule.name in repr(violation)

    def test_is_still_valid_tracks_graph_changes(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        detection = detect_violations(graph, kg_rules)
        dup = next(v for v in detection if v.rule.name == "kg-dedup-lives-in")
        matcher = Matcher(graph)
        assert dup.is_still_valid(graph, matcher)
        graph.remove_edge(dup.match.edge_id("e2"))
        assert not dup.is_still_valid(graph, matcher)
        matcher.close()

    def test_sort_key_orders_by_priority_then_cost(self, tiny_kg, kg_rules):
        detection = detect_violations(tiny_kg, kg_rules)
        ordered = sorted(detection.violations, key=lambda v: sort_key(v))
        priorities = [v.priority for v in ordered]
        assert priorities == sorted(priorities, reverse=True)


class TestDetector:
    def test_detect_counts_per_rule_and_semantics(self, tiny_kg, kg_rules):
        detector = ViolationDetector(tiny_kg, kg_rules)
        result = detector.detect()
        assert len(result) == sum(result.per_rule().values())
        assert set(result.per_semantics()) <= {"incompleteness", "conflict", "redundancy"}
        assert result.matches_enumerated >= len(result)
        assert result.timings.total > 0.0

    def test_detect_for_single_rule(self, tiny_kg, kg_rules):
        detector = ViolationDetector(tiny_kg, kg_rules)
        result = detector.detect_for_rule("kg-dedup-person")
        assert set(v.rule.name for v in result) == {"kg-dedup-person"}

    def test_has_violations_short_circuits(self, tiny_kg, kg_rules, small_kg_dataset):
        assert ViolationDetector(tiny_kg, kg_rules).has_violations()
        clean_detector = ViolationDetector(small_kg_dataset.clean, small_kg_dataset.rules)
        assert not clean_detector.has_violations()

    def test_match_limit_bounds_enumeration(self, tiny_kg, kg_rules):
        detector = ViolationDetector(tiny_kg, kg_rules, match_limit_per_rule=1)
        limited = detector.detect()
        full = ViolationDetector(tiny_kg, kg_rules).detect()
        assert len(limited) <= len(full)


class TestCostModel:
    def test_costs_reflect_operation_mix(self, tiny_kg, kg_rules):
        detection = detect_violations(tiny_kg, kg_rules)
        model = DEFAULT_COST_MODEL
        for violation in detection:
            cost = model.estimate(tiny_kg, violation.rule, violation.match)
            assert cost > 0.0

    def test_merge_cost_grows_with_degree(self, tiny_kg, kg_rules):
        detection = detect_violations(tiny_kg, kg_rules)
        merges = [v for v in detection if v.rule.name == "kg-dedup-person"]
        adds = [v for v in detection if v.rule.name == "kg-add-nationality"]
        assert merges and adds
        model = CostModel()
        merge_cost = model.estimate(tiny_kg, merges[0].rule, merges[0].match)
        add_cost = model.estimate(tiny_kg, adds[0].rule, adds[0].match)
        assert merge_cost > add_cost - 1e-9

    def test_custom_cost_model_changes_estimates(self, tiny_kg, kg_rules):
        detection = detect_violations(tiny_kg, kg_rules)
        violation = next(v for v in detection if v.rule.name == "kg-add-nationality")
        cheap = CostModel(add_edge=0.1).estimate(tiny_kg, violation.rule, violation.match)
        expensive = CostModel(add_edge=10.0).estimate(tiny_kg, violation.rule,
                                                      violation.match)
        assert expensive > cheap


class TestExecutorAndProvenance:
    def test_apply_records_delta_and_log(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        executor = RepairExecutor(graph)
        detection = detect_violations(graph, kg_rules)
        violation = next(v for v in detection if v.rule.name == "kg-add-nationality")
        outcome = executor.apply(violation.rule, violation.match)
        assert outcome.applied and outcome.changed_anything
        assert outcome.delta.summary() == {"add_edge": 1}
        assert len(executor.log) == 1
        action = executor.log.actions[0]
        assert action.rule_name == "kg-add-nationality"
        assert action.total_changes == 1
        assert "kg-add-nationality" in action.describe()

    def test_log_aggregations_and_provenance_queries(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        executor = RepairExecutor(graph)
        for violation in detect_violations(graph, kg_rules):
            if violation.match.is_valid(graph):
                executor.apply(violation.rule, violation.match)
        log = executor.log
        assert sum(log.actions_per_rule().values()) == len(log)
        assert sum(log.actions_per_semantics().values()) == len(log)
        assert log.total_cost() > 0
        some_node = log.actions[0].node_bindings[next(iter(log.actions[0].node_bindings))]
        assert log.actions_touching(some_node)
        assert "repairs" in log.describe()

    def test_failed_repair_is_reported_not_raised(self, tiny_kg, kg_rules):
        graph = tiny_kg.copy()
        executor = RepairExecutor(graph)
        detection = detect_violations(graph, kg_rules)
        violation = next(v for v in detection if v.rule.name == "kg-add-nationality")
        # sabotage: remove the country the repair wants to attach
        graph.remove_node(violation.match.node_id("k"))
        outcome = executor.apply(violation.rule, violation.match)
        assert not outcome.applied
        assert outcome.error
        assert len(executor.log) == 0
