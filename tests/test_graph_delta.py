"""Unit tests for change records and graph deltas."""

from __future__ import annotations

from repro.graph import ChangeKind, ChangeRecorder, GraphChange, GraphDelta, PropertyGraph


class TestGraphChange:
    def test_additive_and_subtractive_classification(self):
        add = GraphChange(kind=ChangeKind.ADD_EDGE, edge_id="e1")
        remove = GraphChange(kind=ChangeKind.REMOVE_EDGE, edge_id="e1")
        update = GraphChange(kind=ChangeKind.UPDATE_NODE, node_id="n1")
        assert add.is_additive and not add.is_subtractive
        assert remove.is_subtractive and not remove.is_additive
        assert update.is_additive and update.is_subtractive  # can create or destroy matches


class TestGraphDelta:
    def test_empty_delta_is_falsy(self):
        assert not GraphDelta()

    def test_touched_nodes_aggregates_change_targets(self):
        delta = GraphDelta()
        delta.record(GraphChange(kind=ChangeKind.ADD_EDGE, edge_id="e1",
                                 touched_nodes=("a", "b")))
        delta.record(GraphChange(kind=ChangeKind.UPDATE_NODE, node_id="c",
                                 touched_nodes=("c",)))
        assert delta.touched_nodes == {"a", "b", "c"}

    def test_removed_ids_include_merges_and_cascades(self):
        delta = GraphDelta()
        delta.record(GraphChange(kind=ChangeKind.REMOVE_NODE, node_id="n1",
                                 details={"removed_edges": ("e1", "e2")}))
        delta.record(GraphChange(kind=ChangeKind.MERGE_NODES, node_id="keep",
                                 details={"merged": "gone", "removed_edges": ("e3",),
                                          "added_edges": ("e4",)}))
        assert delta.removed_node_ids == {"n1", "gone"}
        assert delta.removed_edge_ids == {"e1", "e2", "e3"}
        assert delta.added_edge_ids == {"e4"}

    def test_summary_counts_by_kind(self):
        delta = GraphDelta()
        delta.record(GraphChange(kind=ChangeKind.ADD_EDGE))
        delta.record(GraphChange(kind=ChangeKind.ADD_EDGE))
        delta.record(GraphChange(kind=ChangeKind.REMOVE_NODE))
        assert delta.summary() == {"add_edge": 2, "remove_node": 1}

    def test_merged_with_concatenates(self):
        first = GraphDelta([GraphChange(kind=ChangeKind.ADD_NODE, node_id="a")])
        second = GraphDelta([GraphChange(kind=ChangeKind.ADD_NODE, node_id="b")])
        merged = first.merged_with(second)
        assert len(merged) == 2
        assert len(first) == 1  # original untouched

    def test_additive_and_subtractive_effects(self):
        additive = GraphDelta([GraphChange(kind=ChangeKind.ADD_EDGE)])
        subtractive = GraphDelta([GraphChange(kind=ChangeKind.REMOVE_EDGE)])
        assert additive.has_additive_effect and not additive.has_subtractive_effect
        assert subtractive.has_subtractive_effect and not subtractive.has_additive_effect


class TestChangeRecorder:
    def test_drain_resets_the_recorder(self):
        graph = PropertyGraph()
        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        graph.add_node("Person")
        first = recorder.drain()
        graph.add_node("Person")
        second = recorder.drain()
        assert len(first) == 1
        assert len(second) == 1
        assert not recorder.delta

    def test_recorded_delta_describes_real_mutation(self):
        graph = PropertyGraph()
        a = graph.add_node("Person")
        b = graph.add_node("Person")
        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        edge = graph.add_edge(a.id, b.id, "knows")
        graph.remove_edge(edge.id)
        delta = recorder.drain()
        assert delta.added_edge_ids == {edge.id}
        assert delta.removed_edge_ids == {edge.id}
        assert delta.touched_nodes == {a.id, b.id}
