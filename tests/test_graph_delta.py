"""Unit tests for change records, graph deltas, and delta inversion/replay."""

from __future__ import annotations

import pytest

from repro.graph import (
    ChangeKind,
    ChangeRecorder,
    GraphChange,
    GraphDelta,
    PropertyGraph,
    apply_inverse,
    rebase_delta,
    recording,
    replay_delta,
)


class TestGraphChange:
    def test_additive_and_subtractive_classification(self):
        add = GraphChange(kind=ChangeKind.ADD_EDGE, edge_id="e1")
        remove = GraphChange(kind=ChangeKind.REMOVE_EDGE, edge_id="e1")
        update = GraphChange(kind=ChangeKind.UPDATE_NODE, node_id="n1")
        assert add.is_additive and not add.is_subtractive
        assert remove.is_subtractive and not remove.is_additive
        assert update.is_additive and update.is_subtractive  # can create or destroy matches


class TestGraphDelta:
    def test_empty_delta_is_falsy(self):
        assert not GraphDelta()

    def test_touched_nodes_aggregates_change_targets(self):
        delta = GraphDelta()
        delta.record(GraphChange(kind=ChangeKind.ADD_EDGE, edge_id="e1",
                                 touched_nodes=("a", "b")))
        delta.record(GraphChange(kind=ChangeKind.UPDATE_NODE, node_id="c",
                                 touched_nodes=("c",)))
        assert delta.touched_nodes == {"a", "b", "c"}

    def test_removed_ids_include_merges_and_cascades(self):
        delta = GraphDelta()
        delta.record(GraphChange(kind=ChangeKind.REMOVE_NODE, node_id="n1",
                                 details={"removed_edges": ("e1", "e2")}))
        delta.record(GraphChange(kind=ChangeKind.MERGE_NODES, node_id="keep",
                                 details={"merged": "gone", "removed_edges": ("e3",),
                                          "added_edges": ("e4",)}))
        assert delta.removed_node_ids == {"n1", "gone"}
        assert delta.removed_edge_ids == {"e1", "e2", "e3"}
        assert delta.added_edge_ids == {"e4"}

    def test_summary_counts_by_kind(self):
        delta = GraphDelta()
        delta.record(GraphChange(kind=ChangeKind.ADD_EDGE))
        delta.record(GraphChange(kind=ChangeKind.ADD_EDGE))
        delta.record(GraphChange(kind=ChangeKind.REMOVE_NODE))
        assert delta.summary() == {"add_edge": 2, "remove_node": 1}

    def test_merged_with_concatenates(self):
        first = GraphDelta([GraphChange(kind=ChangeKind.ADD_NODE, node_id="a")])
        second = GraphDelta([GraphChange(kind=ChangeKind.ADD_NODE, node_id="b")])
        merged = first.merged_with(second)
        assert len(merged) == 2
        assert len(first) == 1  # original untouched

    def test_additive_and_subtractive_effects(self):
        additive = GraphDelta([GraphChange(kind=ChangeKind.ADD_EDGE)])
        subtractive = GraphDelta([GraphChange(kind=ChangeKind.REMOVE_EDGE)])
        assert additive.has_additive_effect and not additive.has_subtractive_effect
        assert subtractive.has_subtractive_effect and not subtractive.has_additive_effect


class TestChangeRecorder:
    def test_drain_resets_the_recorder(self):
        graph = PropertyGraph()
        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        graph.add_node("Person")
        first = recorder.drain()
        graph.add_node("Person")
        second = recorder.drain()
        assert len(first) == 1
        assert len(second) == 1
        assert not recorder.delta

    def test_recorded_delta_describes_real_mutation(self):
        graph = PropertyGraph()
        a = graph.add_node("Person")
        b = graph.add_node("Person")
        recorder = ChangeRecorder()
        graph.add_listener(recorder)
        edge = graph.add_edge(a.id, b.id, "knows")
        graph.remove_edge(edge.id)
        delta = recorder.drain()
        assert delta.added_edge_ids == {edge.id}
        assert delta.removed_edge_ids == {edge.id}
        assert delta.touched_nodes == {a.id, b.id}


def _mutation_playground():
    """A small graph plus ids handy for exercising every mutation kind."""
    graph = PropertyGraph("playground")
    a = graph.add_node("Person", {"name": "Ada", "age": 36})
    b = graph.add_node("Person", {"name": "Ada"})
    c = graph.add_node("City", {"name": "London"})
    e1 = graph.add_edge(a.id, c.id, "bornIn", {"confidence": 1.0})
    e2 = graph.add_edge(b.id, c.id, "bornIn", {"confidence": 0.4})
    return graph, a, b, c, e1, e2


def _record(graph, mutate):
    with recording(graph) as recorder:
        mutate(graph)
    return recorder.drain()


def _exactly_equal(graph, other) -> bool:
    """Structural equality plus id-for-id equality (rollback is exact)."""
    return (graph.structurally_equal(other)
            and sorted(graph.node_ids()) == sorted(other.node_ids())
            and sorted(graph.edge_ids()) == sorted(other.edge_ids()))


class TestApplyInverse:
    @pytest.mark.parametrize("mutate", [
        lambda g: g.add_node("Country", {"name": "UK"}),
        lambda g: g.add_edge("n0", "n2", "livesIn", {"since": 2001}),
        lambda g: g.remove_edge("e0"),
        lambda g: g.remove_node("n0"),
        lambda g: g.update_node("n0", {"age": 37, "alive": False},
                                remove_keys=("name",)),
        lambda g: g.update_edge("e0", {"confidence": 0.2}),
        lambda g: g.relabel_node("n2", "Capital"),
        lambda g: g.relabel_edge("e1", "birthPlace"),
        lambda g: g.merge_nodes("n0", "n1"),
    ], ids=["add_node", "add_edge", "remove_edge", "remove_node",
            "update_node", "update_edge", "relabel_node", "relabel_edge",
            "merge_nodes"])
    def test_every_mutation_kind_inverts_exactly(self, mutate):
        graph, *_ = _mutation_playground()
        snapshot = graph.copy()
        delta = _record(graph, mutate)
        assert delta
        apply_inverse(graph, delta)
        assert _exactly_equal(graph, snapshot)

    def test_compound_mutation_sequence_inverts_exactly(self):
        graph, a, b, c, e1, e2 = _mutation_playground()
        snapshot = graph.copy()

        def mutate(g):
            d = g.add_node("Country", {"name": "UK"})
            g.add_edge(c.id, d.id, "inCountry")
            g.update_node(a.id, {"age": 40})
            g.merge_nodes(a.id, b.id)
            g.remove_edge(e1.id)
            g.remove_node(d.id)
            g.relabel_node(c.id, "Capital")

        delta = _record(graph, mutate)
        inverse = apply_inverse(graph, delta)
        assert _exactly_equal(graph, snapshot)
        assert inverse  # the inverse mutations were themselves recorded

    def test_inverse_mutations_reach_listeners(self):
        graph, a, b, c, e1, e2 = _mutation_playground()
        delta = _record(graph, lambda g: g.remove_edge(e1.id))
        observed = _record(graph, lambda g: apply_inverse(g, delta))
        assert observed.added_edge_ids == {e1.id}

    def test_handmade_change_without_snapshot_is_rejected(self):
        graph, *_ = _mutation_playground()
        bare = GraphDelta([GraphChange(kind=ChangeKind.REMOVE_EDGE, edge_id="e9")])
        with pytest.raises(ValueError, match="snapshot"):
            apply_inverse(graph, bare)


class TestReplayDelta:
    def test_replay_reproduces_mutated_graph(self):
        graph, a, b, c, e1, e2 = _mutation_playground()
        baseline = graph.copy()

        def mutate(g):
            d = g.add_node("Country", {"name": "UK"})
            g.add_edge(c.id, d.id, "inCountry")
            g.remove_edge(e2.id)
            g.update_node(a.id, {"age": 41})
            g.relabel_edge(e1.id, "birthPlace")

        delta = _record(graph, mutate)
        twin = baseline.copy()
        replay_delta(twin, delta)
        assert twin.structurally_equal(graph)

    def test_replay_then_inverse_round_trips(self):
        graph, a, b, c, e1, e2 = _mutation_playground()
        baseline = graph.copy()
        delta = _record(graph, lambda g: (g.remove_node(b.id),
                                          g.update_edge(e1.id, {"confidence": 0.9})))
        twin = baseline.copy()
        replayed = replay_delta(twin, delta)
        apply_inverse(twin, replayed)
        assert _exactly_equal(twin, baseline)


class TestIdReservation:
    """The id-space reservation scheme (delta log shipping prerequisite)."""

    def test_reserved_ids_are_never_reissued(self):
        graph = PropertyGraph("primary")
        reserved = graph.reserve_node_ids(5) + graph.reserve_edge_ids(5)
        assert len(set(reserved)) == 10
        a = graph.add_node("X")
        b = graph.add_node("X")
        edge = graph.add_edge(a.id, b.id, "r")
        assert not {a.id, b.id, edge.id} & set(reserved)

    def test_created_ids_and_remap(self):
        graph, a, b, c, e1, e2 = _mutation_playground()
        delta = _record(graph, lambda g: (
            g.add_node("Country", {"name": "UK"}, node_id="k"),
            g.add_edge(c.id, "k", "inCountry", edge_id="ck")))
        assert delta.created_node_ids == ["k"]
        assert delta.created_edge_ids == ["ck"]
        remapped = delta.remap_ids(node_ids={"k": "K2"}, edge_ids={"ck": "CK2"})
        add_node, add_edge = remapped.changes
        assert add_node.node_id == "K2" and add_node.touched_nodes == ("K2",)
        assert add_edge.edge_id == "CK2" and add_edge.details["target"] == "K2"
        # the original delta is untouched
        assert delta.changes[0].node_id == "k"

    def test_remap_rewrites_merge_and_removal_snapshots(self):
        graph, a, b, c, e1, e2 = _mutation_playground()
        delta = _record(graph, lambda g: g.merge_nodes(a.id, b.id,
                                                       drop_duplicate_edges=False))
        (merge,) = delta.changes
        new_edge = merge.details["added_edges"][0]
        remapped = delta.remap_ids(edge_ids={new_edge: "fresh"})
        assert remapped.changes[0].details["added_edges"] == ("fresh",)
        specs = remapped.changes[0].details["removed_edge_specs"]
        assert all(spec["id"] != "fresh" for spec in specs)

    def test_rebased_replay_never_collides_with_primary_ids(self):
        """Regression for the reservation scheme: a delta recorded on a
        working copy whose generated ids *shadow* ids the primary already
        uses must land on fresh reserved ids when replayed."""
        primary, a, b, c, e1, e2 = _mutation_playground()
        # the working copy's generators know nothing about the primary's
        # id space: its first generated ids would collide with n0/e0
        working = PropertyGraph("replica")
        working.add_node("City", {"name": "Paris"})   # gets n0 — taken on primary
        delta = _record(working, lambda g: (
            g.add_node("Country", {"name": "FR"}),
            g.add_edge("n0", "n1", "inCountry")))
        colliding = set(delta.created_node_ids) & set(primary.node_ids())
        assert colliding, "the scenario must actually provoke a collision"

        rebased, node_map, edge_map = rebase_delta(delta, primary)
        assert not set(rebased.created_node_ids) & set(primary.node_ids())
        assert not set(rebased.created_edge_ids) & set(primary.edge_ids())
        # the rebased delta replays cleanly; an un-rebased replay would raise
        before_nodes = primary.num_nodes
        # the edge endpoint n0 exists on the primary (that is the shadowing),
        # so replay succeeds and attaches to reserved elements only
        replay_delta(primary, rebased)
        assert primary.num_nodes == before_nodes + 1
        assert node_map[delta.created_node_ids[0]] in primary.node_store

    def test_unrebased_collision_is_detected(self):
        primary, *_ = _mutation_playground()
        working = PropertyGraph("replica")
        working.add_node("City")
        delta = _record(working, lambda g: g.add_node("Country"))
        with pytest.raises(Exception):
            replay_delta(primary, delta)  # id n1 already exists on the primary
