"""Tests for :mod:`repro.ingest` — edit queues, admission control, the
background repair scheduler, staleness accounting, and the bounded
changefeed buffer.

Scheduling tests drive :meth:`IngestFront.tick` manually (deterministic:
no background thread); thread-liveness tests start the real scheduler.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import RepairConfig, RepairSession, telemetry
from repro.exceptions import AdmissionError, IngestError
from repro.graph.io import graph_to_dict
from repro.ingest import (
    AsyncRepairService,
    BufferedFeed,
    EditQueue,
    IngestConfig,
    IngestFront,
    SubmitAck,
    TenantQuota,
)
from repro.service import DurabilityConfig, GraphRepairService


def _exactly_equal(left, right) -> bool:
    a = graph_to_dict(left)
    b = graph_to_dict(right)
    a.pop("name", None)
    b.pop("name", None)
    return json.dumps(a, sort_keys=True, default=repr) \
        == json.dumps(b, sort_keys=True, default=repr)


def _touch(node_id, key, value):
    """A recordable edit closure setting one node property."""
    return lambda graph: graph.update_node(node_id, {key: value})


def _first_node(service, name):
    return next(iter(service.sessions.get(name).graph.nodes())).id


class TestQuotaValidation:
    def test_policy_must_be_known(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            TenantQuota(policy="drop_newest")

    @pytest.mark.parametrize("kwargs", [
        {"max_pending": 0}, {"block_timeout": -1.0}, {"sla_seconds": 0.0},
        {"weight": 0.0}, {"max_coalesce": 0},
    ])
    def test_bounds_are_validated(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)

    def test_ingest_config_is_validated(self):
        with pytest.raises(ValueError):
            IngestConfig(tick_interval=0.0)
        with pytest.raises(ValueError):
            IngestConfig(max_repairs_per_tick=0)


class TestSubmitAck:
    def test_resolve_and_wait(self):
        ack = SubmitAck("t")
        assert not ack.done()
        ack._resolve(7)
        assert ack.done() and ack.wait(0.1) == 7 and ack.error is None

    def test_fail_raises_from_wait(self):
        ack = SubmitAck("t")
        boom = AdmissionError("shed", tenant="t", reason="shed")
        ack._fail(boom)
        with pytest.raises(AdmissionError) as excinfo:
            ack.wait(0.1)
        assert excinfo.value.reason == "shed"

    def test_wait_timeout(self):
        with pytest.raises(TimeoutError):
            SubmitAck("t").wait(0.01)

    def test_first_resolution_wins(self):
        ack = SubmitAck("t")
        ack._resolve(1)
        ack._fail(RuntimeError("late"))
        assert ack.wait(0.1) == 1

    def test_done_callback_runs_once_whenever_registered(self):
        seen = []
        ack = SubmitAck("t")
        ack.add_done_callback(lambda a: seen.append(("before", a.sequence)))
        ack._resolve(3)
        ack.add_done_callback(lambda a: seen.append(("after", a.sequence)))
        assert seen == [("before", 3), ("after", 3)]


class TestEditQueue:
    def _quota(self, **kwargs):
        return TenantQuota(max_pending=3, block_timeout=0.05, **kwargs)

    def test_fifo_drain_with_limit(self):
        queue = EditQueue("t", self._quota())
        acks = [SubmitAck("t") for _ in range(3)]
        for i, ack in enumerate(acks):
            queue.put(i, ack)
        first = queue.drain(2)
        assert [edit for edit, _ in first] == [0, 1]
        assert [edit for edit, _ in queue.drain(10)] == [2]
        assert queue.drain(10) == []

    def test_reject_policy_raises_full(self):
        queue = EditQueue("t", self._quota(policy="reject"))
        for i in range(3):
            queue.put(i, SubmitAck("t"))
        with pytest.raises(AdmissionError) as excinfo:
            queue.put(99, SubmitAck("t"))
        assert excinfo.value.reason == "full" and excinfo.value.tenant == "t"

    def test_shed_oldest_returns_shed_acks(self):
        queue = EditQueue("t", self._quota(policy="shed_oldest"))
        oldest = SubmitAck("t")
        queue.put(0, oldest)
        queue.put(1, SubmitAck("t"))
        queue.put(2, SubmitAck("t"))
        shed = queue.put(3, SubmitAck("t"))
        assert shed == [oldest]
        assert [edit for edit, _ in queue.drain(10)] == [1, 2, 3]

    def test_block_policy_times_out(self):
        queue = EditQueue("t", self._quota(policy="block"))
        for i in range(3):
            queue.put(i, SubmitAck("t"))
        started = time.monotonic()
        with pytest.raises(AdmissionError) as excinfo:
            queue.put(99, SubmitAck("t"))
        assert excinfo.value.reason == "timeout"
        assert time.monotonic() - started >= 0.04

    def test_block_policy_unblocks_on_drain(self):
        queue = EditQueue("t", TenantQuota(max_pending=3, policy="block",
                                           block_timeout=5.0))
        for i in range(3):
            queue.put(i, SubmitAck("t"))
        admitted = threading.Event()

        def producer():
            queue.put(99, SubmitAck("t"))
            admitted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.02)
        assert not admitted.is_set()  # still blocked at the bound
        queue.drain(1)
        assert admitted.wait(2.0)
        thread.join(2.0)

    def test_close_refuses_puts_and_returns_leftovers(self):
        queue = EditQueue("t", self._quota())
        ack = SubmitAck("t")
        queue.put(0, ack)
        assert queue.close() == [ack]
        with pytest.raises(AdmissionError) as excinfo:
            queue.put(1, SubmitAck("t"))
        assert excinfo.value.reason == "shutdown"


@pytest.fixture
def served(small_kg_workload):
    """An inline-pool service with one registered tenant and its front."""
    with GraphRepairService(inline_pool=True) as service:
        service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                      small_kg_workload.rules)
        with IngestFront(service) as front:
            front.register("kg")
            yield service, front


class TestIngestFront:
    def test_register_requires_served_tenant(self, served):
        _, front = served
        with pytest.raises(IngestError, match="not served"):
            front.register("ghost")

    def test_register_twice_raises(self, served):
        _, front = served
        with pytest.raises(IngestError, match="already registered"):
            front.register("kg")

    def test_submit_unregistered_tenant_raises(self, served):
        _, front = served
        with pytest.raises(IngestError, match="not registered"):
            front.submit("ghost", lambda g: None)

    def test_coalesced_commit_resolves_all_acks_to_one_sequence(self, served):
        service, front = served
        node = _first_node(service, "kg")
        acks = front.submit_many(
            "kg", [_touch(node, f"p{i}", i) for i in range(6)])
        result = front.tick()
        assert result["commits"] == 1
        sequences = {ack.wait(1.0) for ack in acks}
        assert len(sequences) == 1  # one changefeed record for the batch
        stats = front.stats()["tenants"]["kg"]
        assert stats["committed"] == 6 and stats["commits"] == 1
        assert stats["coalesced"] == 5

    def test_coalesced_state_equals_sequential_applies(self, small_kg_workload):
        """Folding a batch into one commit must leave the graph element-
        for-element identical to applying the edits one at a time."""
        sequential = small_kg_workload.dirty.copy(name="seq")
        with RepairSession(sequential, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            node = next(iter(sequential.nodes())).id
            edits = [_touch(node, f"p{i}", i) for i in range(6)]
            for edit in edits:
                session.apply(edit)
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            with IngestFront(service) as front:
                front.register("kg")
                front.submit_many("kg", edits)
                front.flush("kg")
                assert _exactly_equal(service.sessions.get("kg").graph,
                                      sequential)

    def test_max_coalesce_bounds_one_batch(self, served):
        service, front = served
        front.deregister("kg")
        front.register("kg", TenantQuota(max_pending=64, max_coalesce=4))
        node = _first_node(service, "kg")
        front.submit_many("kg", [_touch(node, f"p{i}", i) for i in range(10)])
        front.tick()
        stats = front.stats()["tenants"]["kg"]
        assert stats["committed"] == 4 and stats["queue_depth"] == 6
        front.flush("kg")
        assert front.stats()["tenants"]["kg"]["committed"] == 10

    def test_tick_repairs_dirty_tenant_and_clears_staleness(self, served):
        service, front = served
        node = _first_node(service, "kg")
        ack = front.submit("kg", _touch(node, "marker", 1))
        front.tick()
        sequence = ack.wait(1.0)
        stale = service.staleness()["kg"]
        assert stale.repaired_through >= sequence
        assert stale.pending_deltas == 0
        assert front.stats()["tenants"]["kg"]["repairs"] >= 1
        # read-your-writes is immediately satisfied now
        front.wait_for_repair("kg", sequence, timeout=0.5)

    def test_flush_commits_without_repairing(self, served):
        service, front = served
        node = _first_node(service, "kg")
        front.submit_many("kg", [_touch(node, f"p{i}", i) for i in range(3)])
        moved = front.flush()
        assert moved == 3
        assert front.stats()["tenants"]["kg"]["repairs"] == 0
        assert service.staleness()["kg"].pending_deltas > 0

    def test_quiesce_leaves_front_clean(self, served):
        service, front = served
        node = _first_node(service, "kg")
        front.submit_many("kg", [_touch(node, f"p{i}", i) for i in range(5)])
        front.quiesce(timeout=10.0)
        stale = service.staleness()["kg"]
        assert stale.pending_deltas == 0
        assert front.stats()["tenants"]["kg"]["queue_depth"] == 0

    def test_wait_for_repair_timeout(self, served):
        service, front = served
        node = _first_node(service, "kg")
        ack = front.submit("kg", _touch(node, "x", 1))
        front.flush("kg")  # committed but never repaired
        with pytest.raises(TimeoutError):
            front.wait_for_repair("kg", ack.wait(1.0), timeout=0.05)

    def test_commit_error_is_isolated_per_tenant(self, small_kg_workload,
                                                 small_movie_workload):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            service.serve("movies",
                          small_movie_workload.dirty.copy(name="movies"),
                          small_movie_workload.rules)
            with IngestFront(service) as front:
                front.register("kg")
                front.register("movies")

                def explode(graph):
                    raise RuntimeError("bad edit")

                bad = front.submit("kg", explode)
                node = _first_node(service, "movies")
                good = front.submit("movies", _touch(node, "ok", 1))
                front.tick()
                with pytest.raises(RuntimeError, match="bad edit"):
                    bad.wait(1.0)
                assert good.wait(1.0) >= 1
                stats = front.stats()["tenants"]
                assert "bad edit" in stats["kg"]["last_error"]
                assert stats["movies"]["last_error"] is None

    def test_shed_policy_fails_oldest_ack(self, served):
        service, front = served
        front.deregister("kg")
        front.register("kg", TenantQuota(max_pending=2, policy="shed_oldest"))
        node = _first_node(service, "kg")
        first = front.submit("kg", _touch(node, "a", 1))
        front.submit("kg", _touch(node, "b", 2))
        front.submit("kg", _touch(node, "c", 3))  # sheds `first`
        with pytest.raises(AdmissionError) as excinfo:
            first.wait(1.0)
        assert excinfo.value.reason == "shed"
        stats = front.stats()["tenants"]["kg"]
        assert stats["shed"] == 1

    def test_close_fails_pending_acks_and_refuses_submits(self,
                                                          small_kg_workload):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            front = IngestFront(service)
            front.register("kg")
            node = _first_node(service, "kg")
            ack = front.submit("kg", _touch(node, "x", 1))
            front.close()
            with pytest.raises(AdmissionError) as excinfo:
                ack.wait(1.0)
            assert excinfo.value.reason == "shutdown"
            with pytest.raises(AdmissionError):
                front.submit("kg", _touch(node, "y", 2))
            front.close()  # idempotent

    def test_priority_prefers_stale_over_flooded(self, small_kg_workload,
                                                 small_movie_workload):
        """A flooding tenant's pending-work boost is capped: the tenant
        whose staleness/SLA ratio is worse wins the repair slot."""
        with GraphRepairService(inline_pool=True) as service:
            service.serve("flood", small_kg_workload.dirty.copy(name="flood"),
                          small_kg_workload.rules)
            service.serve("quiet",
                          small_movie_workload.dirty.copy(name="quiet"),
                          small_movie_workload.rules)
            config = IngestConfig(max_repairs_per_tick=1)
            with IngestFront(service, config) as front:
                # quiet: tight SLA; flood: loose SLA but huge queue volume
                front.register("flood", TenantQuota(max_pending=4096,
                                                    sla_seconds=1000.0))
                front.register("quiet", TenantQuota(sla_seconds=0.01))
                flood_node = _first_node(service, "flood")
                quiet_node = _first_node(service, "quiet")
                front.submit_many("flood", [_touch(flood_node, f"f{i}", i)
                                            for i in range(50)])
                front.submit("quiet", _touch(quiet_node, "q", 1))
                front.flush()
                time.sleep(0.05)  # quiet's staleness >> its 10ms SLA
                front.tick()
                stats = front.stats()["tenants"]
                assert stats["quiet"]["repairs"] == 1
                assert stats["flood"]["repairs"] == 0

    def test_no_starvation_under_sustained_flood(self, small_kg_workload,
                                                 small_movie_workload):
        """With one repair slot per tick and the flooder resubmitting every
        tick, the quiet tenant still gets repaired within a few ticks."""
        with GraphRepairService(inline_pool=True) as service:
            service.serve("flood", small_kg_workload.dirty.copy(name="flood"),
                          small_kg_workload.rules)
            service.serve("quiet",
                          small_movie_workload.dirty.copy(name="quiet"),
                          small_movie_workload.rules)
            config = IngestConfig(max_repairs_per_tick=1)
            with IngestFront(service, config) as front:
                front.register("flood", TenantQuota(max_pending=4096))
                front.register("quiet")
                flood_node = _first_node(service, "flood")
                quiet_node = _first_node(service, "quiet")
                front.submit("quiet", _touch(quiet_node, "q", 1))
                for tick in range(20):
                    front.submit_many(
                        "flood", [_touch(flood_node, f"f{tick}_{i}", i)
                                  for i in range(10)])
                    front.tick()
                    time.sleep(0.005)  # staleness accrues between ticks
                    if front.stats()["tenants"]["quiet"]["repairs"] >= 1:
                        break
                assert front.stats()["tenants"]["quiet"]["repairs"] >= 1

    def test_background_thread_drains_and_repairs(self, served):
        service, front = served
        node = _first_node(service, "kg")
        front.start()
        assert front.running
        with pytest.raises(IngestError):
            front.start()  # already running
        acks = front.submit_many(
            "kg", [_touch(node, f"bg{i}", i) for i in range(8)])
        for ack in acks:
            ack.wait(5.0)
        front.wait_for_repair("kg", acks[-1].wait(0.0), timeout=5.0)
        front.stop()
        assert not front.running

    def test_sharded_tenant_repairs_under_pool_lease(self, small_kg_workload):
        with GraphRepairService(inline_pool=True) as service:
            service.serve(
                "kg", small_kg_workload.dirty.copy(name="kg"),
                small_kg_workload.rules,
                config=RepairConfig.sharded(workers=2, warm=True,
                                            parallel_inline=True,
                                            min_partition_nodes=1))
            with IngestFront(service) as front:
                front.register("kg")
                node = _first_node(service, "kg")
                front.submit("kg", _touch(node, "sharded", 1))
                front.tick()
                assert front.stats()["tenants"]["kg"]["repairs"] == 1
                assert service.pool_stats["leases"] >= 1


class TestStalenessAccounting:
    def test_pending_deltas_track_unrepaired_commits(self, served):
        service, front = served
        node = _first_node(service, "kg")
        assert service.staleness()["kg"].pending_deltas == 0
        front.submit_many("kg", [_touch(node, f"p{i}", i) for i in range(3)])
        front.flush("kg")
        stale = service.staleness()["kg"]
        assert stale.pending_deltas == stale.last_sequence > 0
        service.repair("kg")
        after = service.staleness()["kg"]
        assert after.pending_deltas == 0
        assert after.repaired_through == after.last_sequence

    def test_noop_repair_resets_staleness_clock(self, served):
        service, front = served
        service.repair("kg")  # clean everything
        before = service.staleness()["kg"].seconds_since_repair
        time.sleep(0.03)
        assert service.staleness()["kg"].seconds_since_repair > before
        service.repair("kg")  # no-op: publishes nothing
        assert service.staleness()["kg"].seconds_since_repair < 0.03

    def test_staleness_gauges_in_snapshot(self, served):
        service, front = served
        node = _first_node(service, "kg")
        front.submit("kg", _touch(node, "x", 1))
        front.flush("kg")
        with telemetry.collecting():
            snapshot = service.telemetry_snapshot()
            staleness = snapshot.get("repro_tenant_staleness_seconds")
            pending = snapshot.get("repro_tenant_pending_deltas")
            assert staleness is not None and pending is not None
            assert staleness.value(tenant="kg") >= 0.0
            assert pending.value(tenant="kg") \
                == service.staleness()["kg"].pending_deltas > 0


class TestRestoreSeeding:
    def _durable(self, tmp_path):
        return DurabilityConfig(dir=tmp_path, fsync=False)

    def test_unrepaired_recovery_marks_tenant_dirty(self, tmp_path,
                                                    small_kg_workload):
        config = self._durable(tmp_path)
        with GraphRepairService(inline_pool=True) as service:
            session = service.serve("kg",
                                    small_kg_workload.dirty.copy(name="kg"),
                                    small_kg_workload.rules, durable=config)
            node = next(iter(session.graph.nodes())).id
            service.apply("kg", _touch(node, "x", 1))  # commit, never repair
        with GraphRepairService(inline_pool=True) as service:
            service.restore("kg", small_kg_workload.rules, durable=config)
            assert not service.recovery_info("kg").known_clean
            stale = service.staleness()["kg"]
            assert stale.recovered_dirty and stale.dirty
            with IngestFront(service) as front:
                front.register("kg")
                result = front.tick()  # no queued edits, still repairs
                assert result["repairs"] == 1
                assert not service.staleness()["kg"].dirty

    def test_repaired_recovery_is_known_clean(self, tmp_path,
                                              small_kg_workload):
        config = self._durable(tmp_path)
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules, durable=config)
            service.repair("kg")  # publishes a repair record
        with GraphRepairService(inline_pool=True) as service:
            service.restore("kg", small_kg_workload.rules, durable=config)
            recovered = service.recovery_info("kg")
            assert recovered.known_clean
            assert recovered.last_repair_sequence > 0
            # a proven-clean recovery does NOT mark the tenant dirty
            assert not service.staleness()["kg"].dirty
            with IngestFront(service) as front:
                front.register("kg")
                assert front.tick()["repairs"] == 0


class TestBufferedFeed:
    def test_never_draining_subscriber_does_not_stall_commits(self, served):
        """Regression: a subscriber that never drains must cost a bounded
        buffer, never a blocked commit or scheduler tick."""
        service, front = served
        node = _first_node(service, "kg")
        feed = BufferedFeed(lambda cb: service.subscribe("kg", cb),
                            capacity=4, tenant="kg")
        started = time.monotonic()
        for i in range(20):
            ack = front.submit("kg", _touch(node, f"p{i}", i))
            front.tick()
            ack.wait(1.0)
        elapsed = time.monotonic() - started
        assert elapsed < 30.0  # ticked 20 times without ever blocking
        assert len(feed) == 4  # bounded
        assert feed.dropped > 0  # oldest records were shed, counted
        feed.close()

    def test_drop_oldest_keeps_newest_records(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with RepairSession(graph, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            feed = BufferedFeed(session.on_commit, capacity=2, tenant="kg")
            node = next(iter(graph.nodes())).id
            for i in range(5):
                session.apply(_touch(node, f"p{i}", i))
            records = feed.poll()
            assert [r.sequence for r in records] == [4, 5]
            assert feed.dropped == 3

    def test_get_blocks_then_times_out(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with RepairSession(graph, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            with BufferedFeed(session.on_commit, capacity=8) as feed:
                assert feed.get(timeout=0.02) is None
                node = next(iter(graph.nodes())).id
                session.apply(_touch(node, "x", 1))
                record = feed.get(timeout=1.0)
                assert record is not None and record.sequence == 1

    def test_close_unsubscribes(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with RepairSession(graph, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            feed = BufferedFeed(session.on_commit, capacity=8)
            feed.close()
            node = next(iter(graph.nodes())).id
            session.apply(_touch(node, "x", 1))
            assert len(feed) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BufferedFeed(lambda cb: (lambda: None), capacity=0)


class TestApplyMany:
    def test_apply_many_equals_sequential_applies(self, small_kg_workload):
        node_edits = None
        sequential = small_kg_workload.dirty.copy(name="seq")
        with RepairSession(sequential, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            node = next(iter(sequential.nodes())).id
            node_edits = [_touch(node, f"p{i}", i) for i in range(4)]
            for edit in node_edits:
                session.apply(edit)
            sequential_feed = session.last_sequence
        batched = small_kg_workload.dirty.copy(name="batch")
        with RepairSession(batched, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            session.apply_many(node_edits)
            assert session.last_sequence == 1  # ONE record for the batch
        assert sequential_feed == 4
        assert _exactly_equal(sequential, batched)

    def test_apply_many_requires_edits(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with RepairSession(graph, small_kg_workload.rules,
                           config=RepairConfig.fast()) as session:
            with pytest.raises(ValueError):
                session.apply_many([])
