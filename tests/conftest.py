"""Shared fixtures for the test suite.

Expensive fixtures (domain workloads) are session-scoped and deliberately
small; tests that mutate graphs must copy them first (the fixtures hand out
the shared instance).
"""

from __future__ import annotations

import pytest

from repro.datasets import build_workload, load_dataset
from repro.graph import PropertyGraph
from repro.matching import Pattern, PatternEdge, PatternNode, same_value
from repro.rules import knowledge_graph_rules


@pytest.fixture
def empty_graph() -> PropertyGraph:
    return PropertyGraph(name="empty")


@pytest.fixture
def tiny_kg() -> PropertyGraph:
    """A hand-built miniature knowledge graph with one of each error class.

    Contents:
      * France / UK with Paris / London (``inCountry``), Paris is capital of France
      * Ada (born London, nationality UK, lives Paris — twice, duplicate edge)
      * Ada2 — a duplicate of Ada (same name, also born in London)
      * Bob (born Paris) with a *wrong* nationality (UK) and **no** second bornIn
      * Carol (born Paris) with no nationality at all (incompleteness)
    """
    graph = PropertyGraph(name="tiny-kg")
    france = graph.add_node("Country", {"name": "France"})
    uk = graph.add_node("Country", {"name": "UK"})
    paris = graph.add_node("City", {"name": "Paris"})
    london = graph.add_node("City", {"name": "London"})
    graph.add_edge(paris.id, france.id, "inCountry", {"confidence": 1.0})
    graph.add_edge(london.id, uk.id, "inCountry", {"confidence": 1.0})
    graph.add_edge(paris.id, france.id, "capitalOf", {"confidence": 1.0})

    ada = graph.add_node("Person", {"name": "Ada"})
    graph.add_edge(ada.id, london.id, "bornIn", {"confidence": 1.0})
    graph.add_edge(ada.id, uk.id, "nationality", {"confidence": 1.0})
    graph.add_edge(ada.id, paris.id, "livesIn", {"confidence": 1.0})
    graph.add_edge(ada.id, paris.id, "livesIn", {"confidence": 1.0})  # duplicate edge

    ada2 = graph.add_node("Person", {"name": "Ada"})  # duplicate entity
    graph.add_edge(ada2.id, london.id, "bornIn", {"confidence": 1.0})

    bob = graph.add_node("Person", {"name": "Bob"})
    graph.add_edge(bob.id, paris.id, "bornIn", {"confidence": 1.0})
    graph.add_edge(bob.id, uk.id, "nationality", {"confidence": 1.0})  # wrong country

    carol = graph.add_node("Person", {"name": "Carol"})
    graph.add_edge(carol.id, paris.id, "bornIn", {"confidence": 1.0})  # no nationality

    return graph


@pytest.fixture
def triangle_graph() -> PropertyGraph:
    """Three nodes A -> B -> C -> A with labels X, Y, Z and edge label r."""
    graph = PropertyGraph(name="triangle")
    a = graph.add_node("X")
    b = graph.add_node("Y")
    c = graph.add_node("Z")
    graph.add_edge(a.id, b.id, "r")
    graph.add_edge(b.id, c.id, "r")
    graph.add_edge(c.id, a.id, "r")
    return graph


@pytest.fixture
def duplicate_person_pattern() -> Pattern:
    """Two same-named persons born in the same city."""
    return Pattern(
        nodes=[PatternNode("a", "Person"), PatternNode("b", "Person"),
               PatternNode("c", "City")],
        edges=[PatternEdge("a", "c", "bornIn"), PatternEdge("b", "c", "bornIn")],
        comparisons=[same_value("a", "name", "b")],
        name="duplicate-person",
    )


@pytest.fixture
def kg_rules():
    return knowledge_graph_rules()


@pytest.fixture(scope="session")
def small_kg_dataset():
    """A small clean KG dataset (shared; do not mutate)."""
    return load_dataset("kg", scale=60, seed=7)


@pytest.fixture(scope="session")
def small_kg_workload():
    """A small corrupted KG workload (shared; copy before repairing in place)."""
    return build_workload("kg", scale=60, error_rate=0.08, seed=3)


@pytest.fixture(scope="session")
def small_movie_workload():
    return build_workload("movies", scale=50, error_rate=0.08, seed=3)


@pytest.fixture(scope="session")
def small_social_workload():
    return build_workload("social", scale=50, error_rate=0.08, seed=3)
