"""Unit tests for rule semantics, the GRR class, the rule set, and the builder."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidRuleError
from repro.matching import Matcher, Pattern, PatternEdge, PatternNode, same_value
from repro.rules import (
    AddEdge,
    DeleteEdge,
    GraphRepairingRule,
    MergeNodes,
    RuleSet,
    Semantics,
    conflict_rule,
    incompleteness_rule,
    redundancy_rule,
)
from repro.rules.semantics import ALLOWED_OPERATIONS, validate_operations_for_semantics


def evidence_pattern() -> Pattern:
    return Pattern(nodes=[PatternNode("p", "Person"), PatternNode("c", "City")],
                   edges=[PatternEdge("p", "c", "bornIn")], name="evidence")


def missing_pattern() -> Pattern:
    return Pattern(nodes=[PatternNode("p", "Person"), PatternNode("k", "Country")],
                   edges=[PatternEdge("p", "k", "nationality")], name="missing")


class TestSemanticsValidation:
    def test_allowed_operation_tables_are_disjoint_enough(self):
        assert ALLOWED_OPERATIONS[Semantics.INCOMPLETENESS] != \
            ALLOWED_OPERATIONS[Semantics.CONFLICT]

    def test_incompleteness_cannot_delete(self):
        with pytest.raises(InvalidRuleError):
            validate_operations_for_semantics(Semantics.INCOMPLETENESS,
                                              [DeleteEdge(edge_variable="e")])

    def test_conflict_cannot_add(self):
        with pytest.raises(InvalidRuleError):
            validate_operations_for_semantics(Semantics.CONFLICT,
                                              [AddEdge(source="a", target="b", label="r")])

    def test_redundancy_allows_merge(self):
        validate_operations_for_semantics(Semantics.REDUNDANCY,
                                          [MergeNodes(keep="a", merge="b")])

    def test_rules_must_repair_something(self):
        with pytest.raises(InvalidRuleError):
            validate_operations_for_semantics(Semantics.CONFLICT, [])


class TestGraphRepairingRuleValidation:
    def test_incompleteness_requires_missing_pattern(self):
        with pytest.raises(InvalidRuleError):
            GraphRepairingRule("r", Semantics.INCOMPLETENESS, evidence_pattern(),
                               [AddEdge(source="p", target="c", label="x")])

    def test_missing_pattern_must_share_variables(self):
        disjoint = Pattern(nodes=[PatternNode("z", "Country")], name="disjoint")
        with pytest.raises(InvalidRuleError):
            GraphRepairingRule("r", Semantics.INCOMPLETENESS, evidence_pattern(),
                               [AddEdge(source="p", target="c", label="x")],
                               missing=disjoint)

    def test_conflict_rule_must_not_have_missing_pattern(self):
        with pytest.raises(InvalidRuleError):
            GraphRepairingRule("r", Semantics.CONFLICT, evidence_pattern(),
                               [DeleteEdge(source="p", target="c", label="bornIn")],
                               missing=missing_pattern())

    def test_operations_may_only_read_bound_variables(self):
        with pytest.raises(InvalidRuleError):
            GraphRepairingRule("r", Semantics.CONFLICT, evidence_pattern(),
                               [DeleteEdge(edge_variable="nope")])

    def test_operations_may_use_variables_introduced_earlier(self):
        rule = (incompleteness_rule("with-new-node")
                .node("p", "Person").node("c", "City")
                .edge("p", "c", "bornIn")
                .missing_edge("p", "c", "registeredIn")
                .add_node("z", "Registry")
                .add_edge("p", "z", "registeredAt")
                .build())
        assert {op.kind.value for op in rule.operations} == {"add_node", "add_edge"}

    def test_valid_rule_builds_and_describes(self):
        rule = GraphRepairingRule(
            "add-nat", Semantics.INCOMPLETENESS, evidence_pattern(),
            [AddEdge(source="p", target="c", label="registeredIn")],
            missing=missing_pattern(), priority=3, description="doc")
        assert rule.priority == 3
        assert "add-nat" in rule.describe()
        assert "incompleteness" in rule.describe()


class TestViolationSemantics:
    def test_incompleteness_violation_checks_missing_extension(self, tiny_kg):
        rule = (incompleteness_rule("nat")
                .node("p", "Person").node("c", "City").node("k", "Country")
                .edge("p", "c", "bornIn").edge("c", "k", "inCountry")
                .missing_edge("p", "k", "nationality")
                .add_edge("p", "k", "nationality")
                .build())
        matcher = Matcher(tiny_kg)
        matches = matcher.find_matches(rule.pattern)
        people = {node.id: node.get("name") for node in tiny_kg.nodes_with_label("Person")}
        violating = {people[m.node_id("p")] for m in matches
                     if rule.is_violation(matcher, m)}
        satisfied = {people[m.node_id("p")] for m in matches
                     if not rule.is_violation(matcher, m)}
        # Carol lacks a nationality; Bob's points at the wrong country, and Ada2 has none
        assert "Carol" in violating and "Ada" in satisfied and "Bob" in violating
        matcher.close()

    def test_conflict_and_redundancy_matches_are_violations(self, tiny_kg,
                                                            duplicate_person_pattern):
        rule = GraphRepairingRule("dup", Semantics.REDUNDANCY, duplicate_person_pattern,
                                  [MergeNodes(keep="a", merge="b")])
        matcher = Matcher(tiny_kg)
        for match in matcher.find_matches(rule.pattern):
            assert rule.is_violation(matcher, match)
        matcher.close()


class TestRuleEffects:
    def test_effects_resolve_labels_from_pattern(self):
        rule = (conflict_rule("one-birthplace")
                .node("p", "Person").node("c1", "City").node("c2", "City")
                .edge("p", "c1", "bornIn", variable="e1")
                .edge("p", "c2", "bornIn", variable="e2")
                .delete_edge(edge_variable="e2")
                .build())
        effects = rule.effects()
        assert effects.removed_edge_labels == {"bornIn"}
        assert not effects.is_additive and effects.is_subtractive

    def test_additive_effects_and_forbidden_labels(self):
        rule = (incompleteness_rule("nat")
                .node("p", "Person").node("c", "City").node("k", "Country")
                .edge("p", "c", "bornIn").edge("c", "k", "inCountry")
                .missing_edge("p", "k", "nationality")
                .add_edge("p", "k", "nationality")
                .build())
        assert rule.effects().added_edge_labels == {"nationality"}
        assert rule.forbidden_edge_labels() == {"nationality"}
        assert rule.required_edge_labels() == {"bornIn", "inCountry"}
        assert rule.required_node_labels() == {"Person", "City", "Country"}

    def test_merge_effects_include_wildcard_edge_removal(self):
        rule = (redundancy_rule("dedup")
                .node("a", "Person").node("b", "Person").node("c", "City")
                .edge("a", "c", "bornIn").edge("b", "c", "bornIn")
                .compare(same_value("a", "name", "b"))
                .merge(keep="a", merge="b")
                .build())
        effects = rule.effects()
        assert "Person" in effects.removed_node_labels
        assert "*" in effects.removed_edge_labels


class TestRuleSet:
    def _rule(self, name: str) -> GraphRepairingRule:
        return (conflict_rule(name)
                .node("p", "Person").node("c1", "City").node("c2", "City")
                .edge("p", "c1", "bornIn", variable="e1")
                .edge("p", "c2", "bornIn", variable="e2")
                .delete_edge(edge_variable="e2")
                .build())

    def test_add_get_remove_and_iteration(self):
        rules = RuleSet([self._rule("a"), self._rule("b")], name="set")
        assert len(rules) == 2 and "a" in rules
        assert rules.get("a").name == "a"
        assert rules.names() == ["a", "b"]
        rules.remove("a")
        assert len(rules) == 1
        with pytest.raises(InvalidRuleError):
            rules.get("a")

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidRuleError):
            RuleSet([self._rule("a"), self._rule("a")])

    def test_subset_merge_and_by_semantics(self):
        rules = RuleSet([self._rule("a"), self._rule("b")], name="left")
        other = RuleSet([self._rule("c")], name="right")
        merged = rules.merged_with(other)
        assert merged.names() == ["a", "b", "c"]
        assert rules.subset(["b"]).names() == ["b"]
        assert len(merged.by_semantics(Semantics.CONFLICT)) == 3
        assert merged.by_semantics(Semantics.REDUNDANCY) == []

    def test_describe_lists_rules(self):
        rules = RuleSet([self._rule("a")], name="set")
        assert "a" in rules.describe()


class TestBuilderErrors:
    def test_duplicate_evidence_variable(self):
        with pytest.raises(InvalidRuleError):
            incompleteness_rule("x").node("a", "Person").node("a", "City")

    def test_missing_pattern_with_unknown_variable(self):
        builder = (incompleteness_rule("x").node("a", "Person").node("b", "City")
                   .edge("a", "b", "bornIn")
                   .missing_edge("a", "zzz", "r")
                   .add_edge("a", "b", "r"))
        with pytest.raises(InvalidRuleError):
            builder.build()

    def test_builder_without_nodes(self):
        with pytest.raises(InvalidRuleError):
            conflict_rule("x").delete_edge(edge_variable="e").build()
