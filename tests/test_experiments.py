"""Tests for the experiment harness and the E1–E8 runners (quick parameters).

These are integration tests: each runner is executed on deliberately tiny
workloads and its output rows are checked for the structural properties the
benchmarks and EXPERIMENTS.md rely on (columns present, the expected method
matrix, and the headline qualitative relationships).
"""

from __future__ import annotations

import pytest

from repro.datasets import build_workload
from repro.experiments import (
    ABLATION_VARIANTS,
    ALL_RUNNERS,
    METHODS,
    QUICK_DEFAULTS,
    defaults,
    evaluate_method,
    get_method,
    quick_mode_enabled,
    run_e1_quality,
    run_e2_graph_size,
    run_e3_rule_count,
    run_e4_error_rate,
    run_e5_ablation,
    run_e6_analysis,
    run_e7_pattern_size,
    run_e8_semantics,
)
from repro.metrics import format_table


class TestHarness:
    def test_method_registry(self):
        assert set(METHODS) == {"grr-fast", "grr-naive", "detect-only",
                                "fd-relational", "greedy-delete"}
        assert get_method("grr-fast") is METHODS["grr-fast"]
        with pytest.raises(KeyError):
            get_method("does-not-exist")

    def test_evaluate_method_produces_complete_row(self, small_kg_workload):
        row = evaluate_method("grr-fast", small_kg_workload)
        for column in ("domain", "method", "seconds", "repairs_applied",
                       "precision", "recall", "f1"):
            assert column in row
        assert row["method"] == "grr-fast"
        assert 0.0 <= row["f1"] <= 1.0

    def test_quality_can_be_skipped(self, small_kg_workload):
        row = evaluate_method("grr-fast", small_kg_workload, include_quality=False)
        assert "f1" not in row

    def test_quick_mode_respects_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert quick_mode_enabled()
        assert defaults() is QUICK_DEFAULTS
        monkeypatch.setenv("REPRO_BENCH_QUICK", "0")
        assert not quick_mode_enabled()

    def test_all_runners_registered(self):
        assert set(ALL_RUNNERS) == {f"e{i}" for i in range(1, 9)}


class TestRunners:
    def test_e1_quality_shows_grr_dominating_baselines(self):
        rows = run_e1_quality(domains=("kg",), scale=60, error_rate=0.08, seed=1,
                              methods=("grr-fast", "fd-relational", "detect-only"))
        by_method = {row["method"]: row for row in rows}
        assert by_method["grr-fast"]["f1"] > by_method["fd-relational"]["f1"]
        assert by_method["fd-relational"]["f1"] >= by_method["detect-only"]["f1"]
        assert by_method["detect-only"]["recall"] == 0.0
        assert format_table(rows)  # renders without error

    def test_e2_runtime_grows_with_scale_and_fast_wins(self):
        rows = run_e2_graph_size(scales=(40, 120), seed=1)
        fast = {row["scale"]: row["seconds"] for row in rows if row["method"] == "grr-fast"}
        naive = {row["scale"]: row["seconds"] for row in rows if row["method"] == "grr-naive"}
        assert fast[120] > fast[40] * 0.5   # grows (allowing noise)
        assert naive[120] >= fast[120]      # fast never loses at the larger scale

    def test_e3_rows_cover_rule_counts_and_methods(self):
        rows = run_e3_rule_count(rule_counts=(2, 4), scale=60, seed=1)
        assert {row["num_rules"] for row in rows} == {2, 4}
        assert {row["method"] for row in rows} == {"grr-fast", "grr-naive"}
        assert all(row["seconds"] > 0 for row in rows)

    def test_e4_quality_stays_high_across_error_rates(self):
        rows = run_e4_error_rate(error_rates=(0.02, 0.1), scale=60, seed=1,
                                 methods=("grr-fast",))
        assert {row["error_rate"] for row in rows} == {0.02, 0.1}
        assert all(row["f1"] > 0.8 for row in rows)

    def test_e5_ablation_covers_all_variants_with_identical_quality(self):
        rows = run_e5_ablation(scale=60, seed=1)
        assert {row["disabled_optimisation"] for row in rows} == set(ABLATION_VARIANTS)
        f1_values = {round(row["f1"], 6) for row in rows}
        assert len(f1_values) == 1  # optimisations change speed, never the outcome

    def test_e6_analysis_detects_planted_inconsistency(self):
        rows = run_e6_analysis(rule_counts=(4,), scale=60, seed=1, exact_limit=8)
        planted = [row for row in rows if row["planted_inconsistency"]]
        unplanted = [row for row in rows if not row["planted_inconsistency"]]
        assert planted and unplanted
        assert all(row["sufficient_verdict"] == "inconsistent" for row in planted)
        assert all(row["sufficient_verdict"] != "inconsistent" for row in unplanted)
        assert all(row["sufficient_seconds"] < 1.0 for row in rows)

    def test_e7_matching_cost_grows_with_pattern_size(self):
        rows = run_e7_pattern_size(pattern_sizes=(2, 4), scale=60, seed=1,
                                   variants=("naive", "index+decomposition"))
        assert {row["pattern_size"] for row in rows} == {2, 4}
        match_counts = {(row["pattern_size"], row["variant"]): row["matches"]
                        for row in rows}
        # all variants find the same matches
        assert match_counts[(2, "naive")] == match_counts[(2, "index+decomposition")]
        assert match_counts[(4, "naive")] == match_counts[(4, "index+decomposition")]

    def test_e8_semantics_breakdown_accounts_for_all_classes(self):
        rows = run_e8_semantics(domains=("kg",), scale=60, error_rate=0.08, seed=1)
        assert {row["semantics"] for row in rows} == {"incompleteness", "conflict",
                                                      "redundancy"}
        for row in rows:
            assert row["violations_detected"] >= 0
            assert row["violations_remaining"] == 0  # fast repair reaches a fixpoint
            assert row["repairs_applied"] >= 0


class TestEndToEndWorkloads:
    @pytest.mark.parametrize("domain", ["kg", "movies", "social"])
    def test_full_pipeline_per_domain(self, domain):
        """generate -> inject -> repair -> score, per domain (the E1 pipeline)."""
        workload = build_workload(domain, scale=40, error_rate=0.08, seed=21)
        row = evaluate_method("grr-fast", workload)
        assert row["remaining_violations"] == 0
        assert row["f1"] > 0.85
        assert row["precision"] > 0.9
