"""Integration tests for telemetry across the repair stack.

The pinned contracts:

* **counter equivalence** — the telemetry counters recorded during a repair
  equal the :class:`RepairReport` / :class:`MatchingStats` the session
  returns, exactly, for every backend (sequential, sharded inline, warm) and
  every domain workload — instrumentation is an observer, not a second
  bookkeeper;
* **span re-parenting** — a sharded repair exports one trace: the
  dispatching ``repair.fanout`` span with every worker's ``shard.repair``
  nested under it, including across a real spawn boundary;
* **exposition** — a live two-tenant service answers ``/metrics`` with
  per-tenant Prometheus series (repair latency buckets, WAL fsync latency,
  pool counters) and ``/healthz`` with per-tenant sequences;
* **graceful degradation is loud** — the previously-silent swallowed
  exception paths emit structured warnings without changing behavior.
"""

from __future__ import annotations

import json
import logging
import urllib.request

import pytest

from repro import telemetry
from repro.api import RepairConfig, RepairSession
from repro.durability import DurabilityConfig
from repro.service import GraphRepairService
from repro.telemetry import TELEMETRY, MetricsRegistry, Tracer
from repro.telemetry.exposition import CONTENT_TYPE

WORKLOADS = ["small_kg_workload", "small_movie_workload",
             "small_social_workload"]


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Fresh disabled global telemetry per test (the service endpoint tests
    enable the process-wide state; nothing may leak across tests)."""
    previous = (TELEMETRY.enabled, TELEMETRY.registry, TELEMETRY.tracer)
    TELEMETRY.enabled = False
    TELEMETRY.registry = MetricsRegistry()
    TELEMETRY.tracer = Tracer()
    yield
    TELEMETRY.enabled, TELEMETRY.registry, TELEMETRY.tracer = previous


def _counter(snapshot, name: str, **labels) -> float:
    metric = snapshot.get(name)
    return metric.value(**labels) if metric is not None else 0.0


def _assert_counters_equal_report(snapshot, report, stats, tenant: str,
                                  backend: str) -> None:
    labels = {"tenant": tenant, "backend": backend}
    assert _counter(snapshot, "repro_repairs_applied_total", **labels) \
        == report.repairs_applied
    assert _counter(snapshot, "repro_violations_detected_total", **labels) \
        == report.violations_detected
    assert _counter(snapshot, "repro_repairs_failed_total", **labels) \
        == report.repairs_failed
    assert _counter(snapshot, "repro_match_nodes_tried_total", **labels) \
        == stats.nodes_tried
    assert _counter(snapshot, "repro_matches_found_total", **labels) \
        == stats.matches_found
    assert _counter(snapshot, "repro_maintenance_passes_total", **labels) \
        == stats.maintenance_passes


class TestCounterEquivalence:
    @pytest.mark.parametrize("workload_name", WORKLOADS)
    @pytest.mark.parametrize("config", [RepairConfig.fast(),
                                        RepairConfig.naive()],
                             ids=["fast", "naive"])
    def test_sequential_counters_equal_report(self, request, workload_name,
                                              config):
        workload = request.getfixturevalue(workload_name)
        graph = workload.dirty.copy(name="tenant-x")
        with telemetry.collecting() as (registry, _tracer):
            with RepairSession(graph, workload.rules,
                               config=config) as session:
                report = session.repair()
                stats = session.stats
        assert report.repairs_applied > 0
        _assert_counters_equal_report(registry.snapshot(), report, stats,
                                      "tenant-x", config.backend)

    @pytest.mark.parametrize("workload_name", WORKLOADS)
    def test_warm_sharded_counters_equal_report(self, request,
                                                workload_name):
        workload = request.getfixturevalue(workload_name)
        graph = workload.dirty.copy(name="tenant-x")
        config = RepairConfig.sharded(workers=2, warm=True,
                                      parallel_inline=True,
                                      min_partition_nodes=1)
        with telemetry.collecting() as (registry, _tracer):
            with RepairSession(graph, workload.rules,
                               config=config) as session:
                report = session.repair()
                stats = session.stats
        _assert_counters_equal_report(registry.snapshot(), report, stats,
                                      "tenant-x", "sharded")

    def test_repair_latency_histogram_counts_calls(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with telemetry.collecting() as (registry, _tracer):
            with RepairSession(graph, small_kg_workload.rules,
                               config=RepairConfig.fast()) as session:
                session.repair()
                session.repair()  # second call: already clean, still timed
        metric = registry.snapshot().get("repro_repair_seconds")
        key = ("kg", "fast")
        assert metric.histograms[key][2] == 2
        assert metric.quantile(0.99, tenant="kg", backend="fast") > 0.0

    def test_commit_publishes_metrics(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with telemetry.collecting() as (registry, _tracer):
            with RepairSession(graph, small_kg_workload.rules,
                               config=RepairConfig.fast()) as session:
                session.repair()
        snapshot = registry.snapshot()
        assert _counter(snapshot, "repro_commits_total",
                        tenant="kg", source="repair") >= 1
        metric = snapshot.get("repro_commit_seconds")
        assert metric is None or metric.histograms == {} \
            or metric.quantile(0.5) >= 0.0

    def test_phase_histograms_cover_engine_phases(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with telemetry.collecting() as (registry, _tracer):
            with RepairSession(graph, small_kg_workload.rules,
                               config=RepairConfig.fast()) as session:
                session.repair()
        metric = registry.snapshot().get("repro_phase_seconds")
        phases = {key[0] for key in metric.histograms}
        assert "initial-detection" in phases


class TestSpanTrees:
    def test_sequential_repair_span(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        with telemetry.collecting() as (_registry, tracer):
            with RepairSession(graph, small_kg_workload.rules,
                               config=RepairConfig.fast()) as session:
                session.repair()
        roots = [span for span in tracer.roots()
                 if span.name == "session.repair"]
        assert roots
        assert roots[0].attributes == {"tenant": "kg", "backend": "fast"}
        assert roots[0].duration > 0.0

    def test_warm_inline_fanout_reparents_shard_spans(self,
                                                      small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        config = RepairConfig.sharded(workers=2, warm=True,
                                      parallel_inline=True,
                                      min_partition_nodes=1)
        with telemetry.collecting() as (_registry, tracer):
            with RepairSession(graph, small_kg_workload.rules,
                               config=config) as session:
                session.repair()
        roots = [span for span in tracer.roots()
                 if span.name == "session.repair"]
        assert roots
        fanouts = [child for root in roots for child in root.children
                   if child.name == "repair.fanout"]
        assert fanouts
        assert all(span.attributes["mode"] == "warm" for span in fanouts)
        shard_spans = [grandchild for span in fanouts
                       for grandchild in span.children
                       if grandchild.name == "shard.repair"]
        assert shard_spans
        trace_id = roots[0].trace_id
        for span in shard_spans:
            assert span.trace_id == trace_id
            assert span.parent_id in {f.span_id for f in fanouts}

    def test_spawned_worker_spans_cross_the_process_boundary(
            self, small_kg_workload):
        graph = small_kg_workload.dirty.copy(name="kg")
        config = RepairConfig.sharded(workers=2, min_partition_nodes=1)
        with telemetry.collecting() as (registry, tracer):
            with RepairSession(graph, small_kg_workload.rules,
                               config=config) as session:
                report = session.repair()
                stats = session.stats
        roots = [span for span in tracer.roots()
                 if span.name == "session.repair"]
        fanouts = [child for root in roots for child in root.children
                   if child.name == "repair.fanout"]
        assert fanouts
        shard_spans = [grandchild for span in fanouts
                       for grandchild in span.children
                       if grandchild.name == "shard.repair"]
        assert shard_spans
        processes = {span.process for span in shard_spans}
        assert processes and all(p.startswith("shard-") for p in processes)
        assert {span.trace_id for span in shard_spans} \
            == {roots[0].trace_id}
        # shipped shard registries were absorbed: counters still exact
        _assert_counters_equal_report(registry.snapshot(), report, stats,
                                      "kg", "sharded")


class TestServiceExposition:
    def test_two_tenant_metrics_endpoint(self, small_kg_workload,
                                         small_movie_workload, tmp_path):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules, shards=2)
            service.serve("movies",
                          small_movie_workload.dirty.copy(name="movies"),
                          small_movie_workload.rules,
                          durable=DurabilityConfig(dir=tmp_path,
                                                   snapshot_every=4))
            server = service.start_metrics_server()
            assert service.metrics_server is server
            assert TELEMETRY.enabled
            service.repair_all()

            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode()
            # per-tenant repair latency buckets
            assert 'repro_repair_seconds_bucket{tenant="kg"' in body
            assert 'repro_repair_seconds_bucket{tenant="movies"' in body
            # the durable tenant's WAL fsync latency
            assert 'repro_wal_fsync_seconds_count{tenant="movies"}' in body
            assert 'repro_snapshot_sequence{tenant="movies"}' in body
            # pool activity from the sharded tenant
            assert 'repro_pool_binds_total{shard=' in body
            # scrape-time gauges
            assert 'repro_feed_sequence{tenant="kg"}' in body
            assert 'repro_feed_sequence_lag{tenant="movies"}' in body

            with urllib.request.urlopen(f"{server.url}/healthz") as response:
                health = json.load(response)
            assert health["status"] == "ok"
            assert set(health["tenants"]) == {"kg", "movies"}
            assert health["tenants"]["kg"] >= 1

            url = server.url
        # close() shut the endpoint down with the service
        assert service.metrics_server is None or service.closed
        with pytest.raises(OSError):
            urllib.request.urlopen(f"{url}/metrics", timeout=0.5)

    def test_snapshot_gauges_track_sequences(self, small_kg_workload,
                                             tmp_path):
        telemetry.enable()
        try:
            with GraphRepairService(inline_pool=True) as service:
                session = service.serve(
                    "kg", small_kg_workload.dirty.copy(name="kg"),
                    small_kg_workload.rules,
                    durable=DurabilityConfig(dir=tmp_path,
                                             snapshot_every=1000))
                service.repair("kg")
                snapshot = service.telemetry_snapshot()
                assert snapshot.get("repro_feed_sequence").value(tenant="kg") \
                    == session.last_sequence
                lag = snapshot.get("repro_feed_sequence_lag").value(tenant="kg")
                age = snapshot.get("repro_snapshot_age_records") \
                    .value(tenant="kg")
                # snapshot_every=1000: nothing snapshotted yet, every record
                # since the initial snapshot would need replay
                assert lag == age
                assert lag >= 0
        finally:
            telemetry.disable()

    def test_second_metrics_server_is_refused(self, small_kg_workload):
        from repro.exceptions import ServiceError

        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules)
            service.start_metrics_server()
            with pytest.raises(ServiceError):
                service.start_metrics_server()


class TestLoudDegradation:
    def test_unsubscribe_failure_warns_and_still_closes(
            self, small_kg_workload, tmp_path, caplog):
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules,
                          durable=DurabilityConfig(dir=tmp_path))
            service.repair("kg")
            sink = service.durability("kg")

            def _boom():
                raise RuntimeError("hook table corrupted")

            sink._unsubscribe = _boom
            with caplog.at_level(logging.WARNING, logger="repro"):
                service.stop_serving("kg")
            assert sink.closed
        messages = [record.message for record in caplog.records]
        assert any("changefeed-unsubscribe-failed" in message
                   and "tenant=kg" in message
                   and "RuntimeError: hook table corrupted" in message
                   for message in messages)

    def test_wal_metrics_only_when_enabled(self, small_kg_workload,
                                           tmp_path):
        # disabled: the durable path runs bare — no registry writes at all
        with GraphRepairService(inline_pool=True) as service:
            service.serve("kg", small_kg_workload.dirty.copy(name="kg"),
                          small_kg_workload.rules,
                          durable=DurabilityConfig(dir=tmp_path))
            service.repair("kg")
        snapshot = TELEMETRY.registry.snapshot()
        assert snapshot.get("repro_wal_records_total") is None
