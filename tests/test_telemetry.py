"""Unit tests for :mod:`repro.telemetry`: metrics, spans, logging,
exposition, the enablement contract, and the silent-except linter.

The load-bearing property is pinned by hypothesis: registry snapshots are
a commutative monoid under ``merge`` (associative, commutative, identity),
and merging per-shard snapshots in *any* order equals observing everything
in one registry — the exact contract the worker pool relies on when shard
results arrive in nondeterministic order.
"""

from __future__ import annotations

import importlib.util
import json
import logging
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.telemetry import (
    CATALOGUE,
    DEFAULT_LATENCY_BUCKETS,
    TELEMETRY,
    MetricsRegistry,
    RegistrySnapshot,
    Tracer,
    quantile_from_buckets,
    spans_to_chrome,
)
from repro.telemetry.exposition import (
    CONTENT_TYPE,
    TelemetryServer,
    render_prometheus,
)
from repro.telemetry.log import (
    get_logger,
    log_event,
    tenant_logger,
    warn_swallowed,
)

# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", "hits", ("tenant",))
        family.labels(tenant="kg").inc()
        family.labels(tenant="kg").inc(2.0)
        family.labels(tenant="movies").inc(5.0)
        snap = registry.snapshot().get("hits")
        assert snap.value(tenant="kg") == 3.0
        assert snap.value(tenant="movies") == 5.0
        assert snap.total() == 8.0
        assert snap.value(tenant="never-seen") == 0.0

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        child = registry.gauge("level", "", ("tenant",)).labels(tenant="kg")
        child.set(10)
        child.inc(2.5)
        child.dec(0.5)
        assert registry.snapshot().get("level").value(tenant="kg") == 12.0

    def test_label_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", "", ("tenant", "backend"))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(tenant="kg")  # missing 'backend'
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(tenant="kg", backend="fast", extra=1)

    def test_redeclaration_must_agree(self):
        registry = MetricsRegistry()
        registry.counter("hits", "", ("tenant",))
        registry.counter("hits", "", ("tenant",))  # idempotent
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("hits", "", ("tenant",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("hits", "", ("other",))

    def test_histogram_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat", "", (), buckets=(0.1, 1.0, 10.0))
        child = family.labels()
        for value in (0.05, 0.05, 0.5, 5.0):
            child.observe(value)
        snap = registry.snapshot().get("lat")
        counts, total, count = snap.histograms[()]
        assert counts == [2, 1, 1, 0]
        assert count == 4 and total == pytest.approx(5.6)
        # p50 lands at the upper edge of the first bucket
        assert family.quantile(0.5) == pytest.approx(0.1)
        assert snap.quantile(0.5) == pytest.approx(0.1)

    def test_quantile_from_buckets_edge_cases(self):
        assert quantile_from_buckets((1.0, 2.0), [0, 0, 0], 0.5) == 0.0
        # everything in the +Inf bucket clamps to the top bound
        assert quantile_from_buckets((1.0, 2.0), [0, 0, 7], 0.5) == 2.0
        # linear interpolation inside one bucket: 10 obs in (1, 2]
        assert quantile_from_buckets((1.0, 2.0), [0, 10, 0], 0.5) \
            == pytest.approx(1.5)
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [0, 0], 1.5)

    def test_label_free_quantile_unions_children(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat", "", ("shard",),
                                    buckets=(1.0, 2.0))
        family.labels(shard=0).observe(0.5)
        family.labels(shard=1).observe(1.5)
        assert family.quantile(1.0) == pytest.approx(2.0)
        assert family.quantile(0.25) == pytest.approx(0.5)

    def test_absorb_folds_snapshot_into_live_registry(self):
        remote = MetricsRegistry()
        remote.counter("hits", "", ("shard",)).labels(shard=1).inc(4)
        remote.histogram("lat", "", (), buckets=(1.0,)).labels().observe(0.5)
        local = MetricsRegistry()
        local.counter("hits", "", ("shard",)).labels(shard=1).inc(1)
        local.absorb(remote.snapshot())
        local.absorb(remote.snapshot())
        snap = local.snapshot()
        assert snap.get("hits").value(shard=1) == 9.0
        assert snap.get("lat").histograms[()][2] == 2

    def test_merge_rejects_mismatched_declarations(self):
        first = MetricsRegistry()
        first.counter("m", "", ("a",)).labels(a=1).inc()
        second = MetricsRegistry()
        second.gauge("m", "", ("a",)).labels(a=1).set(1)
        with pytest.raises(ValueError, match="declarations differ"):
            first.snapshot().merge(second.snapshot())


# ---------------------------------------------------------------------------
# hypothesis: snapshot merge is associative, commutative, order-independent
# ---------------------------------------------------------------------------

# integer-valued observations keep float addition exact, so equality is
# literal rather than approximate
_events = st.lists(
    st.tuples(st.sampled_from(["counter", "gauge", "histogram"]),
              st.sampled_from(["alpha", "beta"]),
              st.sampled_from(["x", "y", "z"]),
              st.integers(min_value=0, max_value=100)),
    max_size=40)


def _apply(registry: MetricsRegistry, events) -> None:
    for kind, suffix, label_value, amount in events:
        name = f"{kind}_{suffix}"
        if kind == "counter":
            registry.counter(name, "", ("l",)).labels(l=label_value) \
                .inc(float(amount))
        elif kind == "gauge":
            # gauges merge additively (per-worker resident quantities), so
            # the property uses inc — the additive update
            registry.gauge(name, "", ("l",)).labels(l=label_value) \
                .inc(float(amount))
        else:
            registry.histogram(name, "", ("l",), buckets=(10.0, 50.0)) \
                .labels(l=label_value).observe(float(amount))


def _canonical(snapshot: RegistrySnapshot) -> dict:
    """Comparable plain-data form of a snapshot (ignores empty families)."""
    result = {}
    for name, metric in snapshot.metrics.items():
        samples = {key: value for key, value in metric.samples.items()}
        histograms = {key: (tuple(entry[0]), entry[1], entry[2])
                      for key, entry in metric.histograms.items()}
        if samples or histograms:
            result[name] = (metric.kind, tuple(sorted(samples.items())),
                            tuple(sorted(histograms.items())))
    return result


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(parts=st.lists(_events, min_size=1, max_size=5),
           data=st.data())
    def test_merge_is_order_independent_and_equals_single_registry(
            self, parts, data):
        snapshots = []
        for events in parts:
            registry = MetricsRegistry()
            _apply(registry, events)
            snapshots.append(registry.snapshot())

        # one registry observing every event, in order
        combined = MetricsRegistry()
        for events in parts:
            _apply(combined, events)
        expected = _canonical(combined.snapshot())

        # left fold in a hypothesis-chosen order
        order = data.draw(st.permutations(range(len(snapshots))))
        folded = RegistrySnapshot()
        for index in order:
            folded = folded.merge(snapshots[index])
        assert _canonical(folded) == expected

        # arbitrary parenthesization: fold right instead of left
        right = snapshots[-1]
        for snap in reversed(snapshots[:-1]):
            right = snap.merge(right)
        assert _canonical(right) == expected

    @settings(max_examples=30, deadline=None)
    @given(first=_events, second=_events)
    def test_merge_commutes_and_empty_is_identity(self, first, second):
        a, b = MetricsRegistry(), MetricsRegistry()
        _apply(a, first)
        _apply(b, second)
        ab = _canonical(a.snapshot().merge(b.snapshot()))
        ba = _canonical(b.snapshot().merge(a.snapshot()))
        assert ab == ba
        assert _canonical(a.snapshot().merge(RegistrySnapshot())) \
            == _canonical(a.snapshot())

    @settings(max_examples=30, deadline=None)
    @given(parts=st.lists(_events, min_size=1, max_size=4))
    def test_absorb_agrees_with_merge(self, parts):
        live = MetricsRegistry()
        folded = RegistrySnapshot()
        for events in parts:
            registry = MetricsRegistry()
            _apply(registry, events)
            shipped = registry.snapshot()
            live.absorb(shipped)
            folded = folded.merge(shipped)
        assert _canonical(live.snapshot()) == _canonical(folded)


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", tenant="kg") as outer:
            with tracer.span("inner") as inner:
                pass
        roots = tracer.roots()
        assert [span.name for span in roots] == ["outer"]
        assert roots[0].children[0] is inner
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.attributes == {"tenant": "kg"}
        assert outer.duration >= inner.duration >= 0.0

    def test_current_context_round_trip(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("dispatch") as dispatch:
            context = tracer.current_context()
        assert context == {"trace_id": dispatch.trace_id,
                           "span_id": dispatch.span_id}

    def test_remote_parent_and_reparenting(self):
        coordinator = Tracer()
        with coordinator.span("fanout") as fanout:
            context = coordinator.current_context()
            # what a worker process does with the shipped context
            worker = Tracer(remote_parent=context, process="shard-0")
            with worker.span("shard.repair", shard=0):
                pass
            shipped = worker.export_finished()
            assert shipped[0]["trace_id"] == fanout.trace_id
            adopted = coordinator.attach_remote(shipped, process="shard-0")
        assert fanout.children == adopted
        assert adopted[0].parent_id == fanout.span_id
        assert adopted[0].trace_id == fanout.trace_id
        assert adopted[0].process == "shard-0"

    def test_export_finished_drains(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        assert len(tracer.export_finished()) == 1
        assert tracer.export_finished() == []

    def test_chrome_export_has_per_process_lanes(self):
        tracer = Tracer(process="coordinator")
        with tracer.span("fanout", shards=2):
            worker = Tracer(remote_parent=tracer.current_context(),
                            process="shard-0")
            with worker.span("shard.repair"):
                pass
            tracer.attach_remote(worker.export_finished())
        trace = tracer.export_chrome()
        events = trace["traceEvents"]
        names = {event["args"]["name"] for event in events
                 if event["ph"] == "M"}
        assert names == {"repro:coordinator", "repro:shard-0"}
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} \
            == {"fanout", "shard.repair"}
        assert len({event["pid"] for event in complete}) == 2
        json.dumps(trace)  # must be serializable as-is

    def test_slow_span_threshold_logs(self, caplog):
        tracer = Tracer(slow_span_seconds=0.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            with tracer.span("glacial", tenant="kg"):
                pass
        assert any("slow-span" in record.message
                   and "span=glacial" in record.message
                   for record in caplog.records)


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_log_event_formats_key_values(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            log_event(get_logger("unit"), "info", "thing-happened",
                      shard=3, reason="because of spaces")
        record = caplog.records[-1]
        assert record.name == "repro.unit"
        assert record.message \
            == "thing-happened shard=3 reason='because of spaces'"

    def test_warn_swallowed_carries_exception(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            warn_swallowed(get_logger("unit"), "degraded",
                           exc=ValueError("boom"), tenant="kg")
        record = caplog.records[-1]
        assert record.levelno == logging.WARNING
        assert "degraded" in record.message
        assert "error='ValueError: boom'" in record.message

    def test_tenant_logger_stamps_tenant(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            log_event(tenant_logger("unit", "movies"), "info", "served")
        assert caplog.records[-1].message == "served tenant=movies"


# ---------------------------------------------------------------------------
# prometheus rendering + HTTP endpoint
# ---------------------------------------------------------------------------


class TestExposition:
    def test_render_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "Things.", ("tenant", "backend")) \
            .labels(tenant="kg", backend="fast").inc(3)
        registry.gauge("repro_level", "", ("tenant",)) \
            .labels(tenant='we"ird').set(1.5)
        text = render_prometheus(registry.snapshot())
        assert "# HELP repro_x_total Things." in text
        assert "# TYPE repro_x_total counter" in text
        # labels render in declared order, not sorted
        assert 'repro_x_total{tenant="kg",backend="fast"} 3' in text
        assert 'repro_level{tenant="we\\"ird"} 1.5' in text
        assert text.endswith("\n")

    def test_render_histogram_is_cumulative(self):
        registry = MetricsRegistry()
        child = registry.histogram("repro_lat_seconds", "Latency.",
                                   ("tenant",), buckets=(0.1, 1.0)) \
            .labels(tenant="kg")
        for value in (0.05, 0.5, 5.0):
            child.observe(value)
        text = render_prometheus(registry.snapshot())
        assert 'repro_lat_seconds_bucket{tenant="kg",le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{tenant="kg",le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{tenant="kg",le="+Inf"} 3' in text
        assert 'repro_lat_seconds_count{tenant="kg"} 3' in text
        assert 'repro_lat_seconds_sum{tenant="kg"} 5.55' in text

    def test_server_serves_metrics_health_and_404(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "", ("tenant",)) \
            .labels(tenant="kg").inc(2)
        with TelemetryServer(registry.snapshot,
                             health_provider=lambda: {"status": "ok"}) \
                as server:
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode()
            assert 'repro_hits_total{tenant="kg"} 2' in body
            with urllib.request.urlopen(f"{server.url}/healthz") as response:
                assert json.load(response) == {"status": "ok"}
            registry.counter("repro_hits_total", "", ("tenant",)) \
                .labels(tenant="kg").inc()
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                assert 'repro_hits_total{tenant="kg"} 3' \
                    in response.read().decode()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_server_failing_provider_returns_500(self):
        def explode():
            raise RuntimeError("snapshot failed")

        with TelemetryServer(explode) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/metrics")
            assert excinfo.value.code == 500
            assert b"snapshot failed" in excinfo.value.read()


# ---------------------------------------------------------------------------
# the enablement contract (facade)
# ---------------------------------------------------------------------------


class TestEnablementContract:
    def test_disabled_span_is_shared_noop(self):
        assert not TELEMETRY.enabled
        first = telemetry.span("anything", tenant="kg")
        second = telemetry.span("other")
        assert first is second  # one shared nullcontext, no allocation
        with first:
            pass
        assert telemetry.current_context() is None
        assert TELEMETRY.tracer.roots() == []

    def test_collecting_scopes_and_restores(self):
        outer_registry = TELEMETRY.registry
        with telemetry.collecting() as (registry, tracer):
            assert TELEMETRY.enabled
            assert TELEMETRY.registry is registry is not outer_registry
            telemetry.inc("repro_pool_spawns_total")
            with telemetry.span("scoped"):
                pass
        assert not TELEMETRY.enabled
        assert TELEMETRY.registry is outer_registry
        assert registry.snapshot().get("repro_pool_spawns_total").total() == 1
        assert [span.name for span in tracer.roots()] == ["scoped"]

    def test_facade_uses_catalogue_declarations(self):
        with telemetry.collecting() as (registry, _tracer):
            telemetry.observe("repro_repair_seconds", 0.01,
                              tenant="kg", backend="fast")
            family = registry.get("repro_repair_seconds")
            assert family.kind == "histogram"
            assert family.labelnames == ("tenant", "backend")
            assert family.buckets == DEFAULT_LATENCY_BUCKETS
            with pytest.raises(ValueError, match="declared as"):
                telemetry.inc("repro_repair_seconds")

    def test_catalogue_naming_conventions(self):
        for name, (kind, help_text, labelnames) in CATALOGUE.items():
            assert name.startswith("repro_")
            assert help_text, name
            assert isinstance(labelnames, tuple)
            if kind == "counter":
                assert name.endswith("_total"), name
            if kind == "histogram":
                assert name.endswith("_seconds"), name

    def test_worker_collection_none_context_is_noop(self):
        with telemetry.worker_collection(None, process="shard-0") as box:
            assert not TELEMETRY.enabled
        assert box == {"telemetry": None, "spans": []}

    def test_worker_collection_fills_box(self):
        context = {"trace_id": "t-1", "span_id": "s-1"}
        with telemetry.worker_collection(context, process="shard-3") as box:
            telemetry.inc("repro_pool_shard_repairs_total", shard=3)
            with telemetry.span("shard.repair", shard=3):
                pass
        assert not TELEMETRY.enabled
        snapshot = box["telemetry"]
        assert snapshot.get("repro_pool_shard_repairs_total") \
            .value(shard=3) == 1
        (span_dict,) = box["spans"]
        assert span_dict["trace_id"] == "t-1"
        assert span_dict["parent_id"] == "s-1"
        assert span_dict["process"] == "shard-3"


# ---------------------------------------------------------------------------
# the silent-except linter
# ---------------------------------------------------------------------------

_LINT_PATH = Path(__file__).resolve().parent.parent \
    / "tools" / "lint_silent_except.py"


def _load_linter():
    spec = importlib.util.spec_from_file_location("lint_silent_except",
                                                  _LINT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSilentExceptLinter:
    def test_flags_silent_broad_handlers(self, tmp_path):
        linter = _load_linter()
        path = tmp_path / "bad.py"
        path.write_text(
            "try:\n    x = 1\nexcept Exception:\n    pass\n"
            "try:\n    y = 2\nexcept (ValueError, BaseException):\n    ...\n"
            "try:\n    z = 3\nexcept:\n    pass\n")
        findings = linter.lint_file(path)
        assert len(findings) == 3
        assert all("silent broad except" in finding for finding in findings)

    def test_allows_marker_logging_and_narrow_handlers(self, tmp_path):
        linter = _load_linter()
        path = tmp_path / "good.py"
        path.write_text(
            "try:\n    x = 1\n"
            "except Exception:\n    pass  # silent-ok: deliberate\n"
            "try:\n    y = 2\nexcept Exception as exc:\n    log(exc)\n"
            "try:\n    z = 3\nexcept KeyError:\n    pass\n")
        assert linter.lint_file(path) == []

    def test_src_tree_is_clean(self):
        linter = _load_linter()
        src = Path(__file__).resolve().parent.parent / "src"
        findings = []
        for path in sorted(src.rglob("*.py")):
            findings.extend(linter.lint_file(path))
        assert findings == []
