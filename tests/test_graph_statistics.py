"""Unit tests for graph statistics and generators."""

from __future__ import annotations

import pytest

from repro.graph import (
    PropertyGraph,
    community_graph,
    compute_statistics,
    cycle_graph,
    degree_histogram,
    erdos_renyi_graph,
    functional_predicate_candidates,
    label_pair_histogram,
    path_graph,
    preferential_attachment_graph,
    star_graph,
)


class TestStatistics:
    def test_counts_and_labels(self, tiny_kg):
        stats = compute_statistics(tiny_kg)
        assert stats.num_nodes == tiny_kg.num_nodes
        assert stats.num_edges == tiny_kg.num_edges
        assert stats.node_label_counts["Person"] == 4
        assert stats.edge_label_counts["bornIn"] == 4
        assert stats.num_parallel_duplicate_edges == 1  # the duplicated livesIn
        assert stats.num_self_loops == 0

    def test_degree_summary(self, triangle_graph):
        stats = compute_statistics(triangle_graph)
        assert stats.degree_min == stats.degree_max == 2
        assert stats.degree_mean == pytest.approx(2.0)
        assert stats.num_isolated_nodes == 0

    def test_empty_graph_statistics(self):
        stats = compute_statistics(PropertyGraph("empty"))
        assert stats.num_nodes == 0 and stats.num_edges == 0
        assert stats.degree_mean == 0.0

    def test_degree_histogram(self, triangle_graph):
        assert degree_histogram(triangle_graph) == {2: 3}

    def test_label_pair_histogram(self, tiny_kg):
        histogram = label_pair_histogram(tiny_kg)
        assert histogram[("Person", "bornIn", "City")] == 4
        assert histogram[("City", "inCountry", "Country")] == 2

    def test_functional_predicate_detection(self, tiny_kg):
        functional = functional_predicate_candidates(tiny_kg)
        assert "bornIn" in functional       # every person has exactly one
        assert "livesIn" not in functional  # Ada has two livesIn edges

    def test_statistics_string_rendering(self, tiny_kg):
        text = str(compute_statistics(tiny_kg))
        assert "nodes" in text and "Person" in text


class TestGenerators:
    def test_erdos_renyi_size_and_determinism(self):
        first = erdos_renyi_graph(30, 0.1, seed=5)
        second = erdos_renyi_graph(30, 0.1, seed=5)
        assert first.num_nodes == 30
        assert first.num_edges == second.num_edges
        assert first.structurally_equal(second)

    def test_erdos_renyi_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_preferential_attachment_has_skewed_degrees(self):
        graph = preferential_attachment_graph(120, edges_per_node=2, seed=1)
        degrees = sorted(graph.degree(node_id) for node_id in graph.node_ids())
        assert degrees[-1] >= 3 * max(1, degrees[len(degrees) // 2])

    def test_community_graph_marks_communities(self):
        graph = community_graph(3, 10, seed=2)
        communities = {node.get("community") for node in graph.nodes()}
        assert communities == {0, 1, 2}
        assert graph.num_nodes == 30

    def test_path_star_cycle_shapes(self):
        path = path_graph(4)
        assert path.num_nodes == 5 and path.num_edges == 4
        star = star_graph(6)
        assert star.num_nodes == 7 and star.num_edges == 6
        cycle = cycle_graph(5)
        assert cycle.num_nodes == 5 and cycle.num_edges == 5
        inward = star_graph(3, outward=False)
        center = inward.node_ids()[0]
        assert inward.in_degree(center) == 3

    def test_generators_validate_arguments(self):
        with pytest.raises(ValueError):
            path_graph(-1)
        with pytest.raises(ValueError):
            cycle_graph(0)
        with pytest.raises(ValueError):
            star_graph(-2)
