"""The session's committed-delta changefeed.

Pins the transport contract delta log shipping builds on:

* records are **monotonically sequenced** (dense, starting at 1) and
  published only for the committed history — staged-then-rolled-back edits
  never appear;
* every record **replays exactly**: a replica that starts from a copy of the
  session's opening graph and applies each record once, in sequence order,
  is element-for-element identical to the session's graph — ids, labels,
  properties — across repairs (merges included, via exact ``MERGE_NODES``
  replay) and commits, for every backend;
* ``on_commit`` subscribers observe the same records, in order, and can
  unsubscribe.

The hypothesis case fuzzes random mutation batches (including node merges
and rollbacks) through a session and replays the feed; the domain cases run
full repair workloads.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import CommittedDelta, RepairConfig, RepairSession
from repro.graph.delta import rebase_delta, replay_delta
from repro.graph.io import graph_to_dict
from repro.graph.property_graph import PropertyGraph

WORKLOAD_FIXTURES = ("small_kg_workload", "small_movie_workload",
                     "small_social_workload")


@pytest.fixture(params=WORKLOAD_FIXTURES)
def workload(request):
    return request.getfixturevalue(request.param)


def _exactly_equal(left: PropertyGraph, right: PropertyGraph) -> bool:
    """Element-for-element equality *including* edge ids (stricter than
    ``structurally_equal``, which treats edges as an id-less multiset)."""
    a = graph_to_dict(left)
    b = graph_to_dict(right)
    a.pop("name", None)
    b.pop("name", None)
    return json.dumps(a, sort_keys=True, default=repr) \
        == json.dumps(b, sort_keys=True, default=repr)


def _rebuild_from_feed(opening: PropertyGraph,
                       records: list[CommittedDelta]) -> PropertyGraph:
    replica = opening.copy(name="replica")
    for record in records:
        record.replay_onto(replica)
    return replica


class TestFeedOrdering:
    def test_sequences_are_dense_and_sourced(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy()
        with RepairSession(graph, small_kg_workload.rules) as session:
            assert session.deltas() == []
            assert session.last_sequence == 0
            session.repair()
            session.apply(lambda g: g.add_node("Person", {"name": "A"}))
            session.repair()  # nothing pending: publishes no record
            records = session.deltas()
        assert [r.sequence for r in records] == list(range(1, len(records) + 1))
        assert records[0].source == "repair"
        assert records[1].source == "commit"
        assert len(records) == 2

    def test_empty_commit_and_rollback_publish_nothing(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy()
        with RepairSession(graph, small_kg_workload.rules) as session:
            session.commit()
            session.stage(lambda g: g.add_node("Person", {"name": "gone"}))
            session.rollback()
            assert session.deltas() == []

    def test_deltas_after_paginates(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy()
        with RepairSession(graph, small_kg_workload.rules) as session:
            session.apply(lambda g: g.add_node("Person", {"name": "A"}))
            session.apply(lambda g: g.add_node("Person", {"name": "B"}))
            assert [r.sequence for r in session.deltas(after=1)] == [2]
            assert session.deltas(after=2) == []
            with pytest.raises(ValueError):
                session.deltas(after=-1)

    def test_on_commit_streams_in_order_and_unsubscribes(self, small_kg_workload):
        graph = small_kg_workload.dirty.copy()
        seen: list[int] = []
        with RepairSession(graph, small_kg_workload.rules) as session:
            unsubscribe = session.on_commit(lambda r: seen.append(r.sequence))
            session.repair()
            session.apply(lambda g: g.add_node("Person", {"name": "A"}))
            assert seen == [1, 2]
            unsubscribe()
            session.apply(lambda g: g.add_node("Person", {"name": "B"}))
            assert seen == [1, 2]
            assert session.last_sequence == 3

    def test_subscriber_exception_propagates_but_record_lands(self,
                                                              small_kg_workload):
        graph = small_kg_workload.dirty.copy()
        with RepairSession(graph, small_kg_workload.rules) as session:
            session.on_commit(lambda r: (_ for _ in ()).throw(RuntimeError("x")))
            with pytest.raises(RuntimeError):
                session.apply(lambda g: g.add_node("Person", {"name": "A"}))
            assert session.last_sequence == 1


class TestReplicaReconstruction:
    @pytest.mark.parametrize("config_factory", [
        RepairConfig.fast,
        lambda: RepairConfig.fast().batched(),
        lambda: RepairConfig.sharded(workers=2, warm=True,
                                     parallel_inline=True,
                                     min_partition_nodes=1),
    ], ids=["fast", "batched", "warm-sharded"])
    def test_feed_rebuilds_exact_graph(self, workload, config_factory):
        opening = workload.dirty.copy(name="opening")
        live = opening.copy(name="live")
        with RepairSession(live, workload.rules,
                           config=config_factory()) as session:
            session.repair()
            session.apply(lambda g: g.add_node("Person", {"name": "late"}))
            edge_id = live.edge_ids()[3]
            session.apply(lambda g: g.remove_edge(edge_id))
            session.repair()
            records = session.deltas()
        replica = _rebuild_from_feed(opening, records)
        assert _exactly_equal(replica, live)

    def test_incremental_subscriber_replica(self, small_kg_workload):
        """A replica fed through on_commit (not a terminal poll) tracks the
        session after every operation."""
        opening = small_kg_workload.dirty.copy(name="opening")
        live = opening.copy(name="live")
        replica = opening.copy(name="replica")
        with RepairSession(live, small_kg_workload.rules) as session:
            session.on_commit(lambda record: record.replay_onto(replica))
            session.repair()
            assert _exactly_equal(replica, live)
            session.apply(lambda g: g.add_node("City", {"name": "Geneva"}))
            assert _exactly_equal(replica, live)
            session.repair()
            assert _exactly_equal(replica, live)

    def test_rebase_onto_foreign_id_space(self, small_kg_workload):
        """A record rebased onto a replica with a *live* id generator whose
        next ids would collide still replays cleanly (the reservation
        scheme)."""
        opening = small_kg_workload.dirty.copy(name="opening")
        live = opening.copy(name="live")
        with RepairSession(live, small_kg_workload.rules) as session:
            session.apply(lambda g: g.add_node("Person", {"name": "fresh"}))
            (record,) = session.deltas()
        replica = opening.copy(name="replica")
        # burn the replica's generator so the record's created id collides
        shadow = replica.add_node("Person", {"name": "shadow"})
        created = record.delta.created_node_ids
        assert shadow.id in created, "scenario must provoke a collision"
        rebased, node_map, _ = rebase_delta(record.delta, replica)
        replay_delta(replica, rebased)
        assert replica.num_nodes == opening.num_nodes + 2
        assert node_map[created[0]] in replica.node_store


NODE_LABELS = ("Person", "City", "Country")
EDGE_LABELS = ("knows", "livesIn", "inCountry")


@st.composite
def seed_graphs(draw, max_nodes: int = 8, max_edges: int = 14) -> PropertyGraph:
    graph = PropertyGraph(name="seed")
    count = draw(st.integers(min_value=2, max_value=max_nodes))
    for index in range(count):
        graph.add_node(draw(st.sampled_from(NODE_LABELS)), {"i": index})
    node_ids = graph.node_ids()
    for _ in range(draw(st.integers(min_value=0, max_value=max_edges))):
        graph.add_edge(draw(st.sampled_from(node_ids)),
                       draw(st.sampled_from(node_ids)),
                       draw(st.sampled_from(EDGE_LABELS)))
    return graph


class TestFeedReplayProperty:
    @given(graph=seed_graphs(), data=st.data())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_commits_replay_exactly(self, graph, data):
        """Any committed mutation history — adds, removals, updates,
        relabels, merges, with rollbacks interleaved — rebuilds the exact
        graph from the changefeed."""
        opening = graph.copy(name="opening")
        session = RepairSession(graph, [], config=RepairConfig.fast())
        try:
            for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
                action = data.draw(st.sampled_from(
                    ["add_edge", "remove_edge", "add_node", "remove_node",
                     "update", "relabel", "merge", "rollback"]))
                node_ids = graph.node_ids()
                edge_ids = graph.edge_ids()

                def edit(g, action=action, data=data):
                    if action == "add_edge" and node_ids:
                        g.add_edge(data.draw(st.sampled_from(node_ids)),
                                   data.draw(st.sampled_from(node_ids)),
                                   data.draw(st.sampled_from(EDGE_LABELS)))
                    elif action == "remove_edge" and edge_ids:
                        g.remove_edge(data.draw(st.sampled_from(edge_ids)))
                    elif action == "add_node":
                        node = g.add_node(data.draw(st.sampled_from(NODE_LABELS)))
                        if node_ids:
                            g.add_edge(node.id,
                                       data.draw(st.sampled_from(node_ids)),
                                       data.draw(st.sampled_from(EDGE_LABELS)))
                    elif action == "remove_node" and len(node_ids) > 2:
                        g.remove_node(data.draw(st.sampled_from(node_ids)))
                    elif action == "update" and node_ids:
                        g.update_node(data.draw(st.sampled_from(node_ids)),
                                      {"touched": data.draw(st.integers(0, 9))})
                    elif action == "relabel" and node_ids:
                        g.relabel_node(data.draw(st.sampled_from(node_ids)),
                                       data.draw(st.sampled_from(NODE_LABELS)))
                    elif action == "merge" and len(node_ids) > 3:
                        keep = data.draw(st.sampled_from(node_ids))
                        merge = data.draw(st.sampled_from(
                            [n for n in node_ids if n != keep]))
                        g.merge_nodes(keep, merge,
                                      prefer_kept_properties=data.draw(
                                          st.booleans()),
                                      drop_duplicate_edges=data.draw(
                                          st.booleans()))

                if action == "rollback":
                    session.stage(lambda g: g.add_node("Person",
                                                       {"name": "doomed"}))
                    session.rollback()
                else:
                    session.apply(edit)
            replica = _rebuild_from_feed(opening, session.deltas())
            assert _exactly_equal(replica, session.graph)
        finally:
            session.close()
