"""Tests for the comparison baselines and the quality / change metrics."""

from __future__ import annotations

import pytest

from repro.baselines import DetectOnlyBaseline, FDRelationalBaseline, GreedyConfig, \
    GreedyDeleteBaseline
from repro.metrics import (
    change_summary,
    entity_key,
    fact_delta,
    format_csv,
    format_series,
    format_table,
    graph_facts,
    graph_restored_exactly,
    repair_quality,
    summarize_rows,
)
from repro.repair import detect_violations, repair_graph


class TestDetectOnlyBaseline:
    def test_detects_but_changes_nothing(self, small_kg_workload):
        repaired, report = DetectOnlyBaseline().repair(small_kg_workload.dirty,
                                                       small_kg_workload.rules)
        assert report.violations_detected > 0
        assert report.changes_applied == 0
        assert graph_facts(repaired) == graph_facts(small_kg_workload.dirty)
        quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                 repaired, small_kg_workload.ground_truth)
        assert quality.recall == 0.0
        assert quality.precision == 1.0  # vacuously: it changed nothing


class TestFDRelationalBaseline:
    def test_repairs_functional_conflicts_and_duplicate_edges_only(self, small_kg_workload):
        repaired, report = FDRelationalBaseline().repair(small_kg_workload.dirty,
                                                         small_kg_workload.rules)
        assert report.changes_applied > 0
        quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                 repaired, small_kg_workload.ground_truth)
        grr_repaired, _ = repair_graph(small_kg_workload.dirty, small_kg_workload.rules)
        grr_quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                     grr_repaired, small_kg_workload.ground_truth)
        # it can fix some conflicts/duplicate edges but never incompleteness,
        # so GRR repair strictly dominates it on recall
        assert quality.recall < grr_quality.recall
        assert quality.recall_by_kind.get("incompleteness", 0.0) == 0.0

    def test_explicit_functional_predicates_are_respected(self, small_kg_workload):
        baseline = FDRelationalBaseline(functional_predicates=["bornIn"])
        _, report = baseline.repair(small_kg_workload.dirty, small_kg_workload.rules)
        assert report.details["functional_predicates"] == ["bornIn"]

    def test_keeps_the_higher_confidence_edge(self, tiny_kg):
        graph = tiny_kg.copy()
        bob = next(node.id for node in graph.nodes_with_label("Person")
                   if node.get("name") == "Bob")
        london = next(node.id for node in graph.nodes_with_label("City")
                      if node.get("name") == "London")
        graph.add_edge(bob, london, "bornIn", {"confidence": 0.3})
        repaired, _ = FDRelationalBaseline(functional_predicates=["bornIn"]).repair(graph)
        kept = repaired.out_edges_with_label(bob, "bornIn")
        assert len(kept) == 1
        assert kept[0].get("confidence") == 1.0


class TestGreedyBaseline:
    def test_reaches_violation_free_state_by_deleting(self, small_kg_workload):
        repaired, report = GreedyDeleteBaseline().repair(small_kg_workload.dirty,
                                                         small_kg_workload.rules)
        assert report.changes_applied > 0
        assert len(detect_violations(repaired, small_kg_workload.rules)) == 0
        quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                 repaired, small_kg_workload.ground_truth)
        grr_repaired, _ = repair_graph(small_kg_workload.dirty, small_kg_workload.rules)
        grr_quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                     grr_repaired, small_kg_workload.ground_truth)
        assert quality.f1 < grr_quality.f1  # deletion-only is strictly worse

    def test_deletion_budget_is_respected(self, small_kg_workload):
        baseline = GreedyDeleteBaseline(GreedyConfig(max_deletions=3))
        _, report = baseline.repair(small_kg_workload.dirty, small_kg_workload.rules)
        assert report.changes_applied <= 3


class TestFactsAndQuality:
    def test_entity_key_uses_identifying_property(self, tiny_kg):
        person = tiny_kg.nodes_with_label("Person")[0]
        key = entity_key(person)
        assert key[0] == "Person" and key[1] == "name"
        country = tiny_kg.nodes_with_label("Country")[0]
        assert entity_key(country)[2] == country.get("name")

    def test_fact_multiset_counts_duplicates(self, tiny_kg):
        facts = graph_facts(tiny_kg)
        ada_key = ("Person", "name", "Ada")
        paris_key = ("City", "name", "Paris")
        assert facts[("edge", ada_key, "livesIn", paris_key)] == 2
        assert facts[("node", ada_key, "Person")] == 2  # Ada and her duplicate

    def test_fact_delta_is_exact_inverse(self, tiny_kg):
        modified = tiny_kg.copy()
        modified.remove_edge(modified.edge_ids()[0])
        modified.add_node("Person", {"name": "Zed"})
        added, removed = fact_delta(graph_facts(tiny_kg), graph_facts(modified))
        back_added, back_removed = fact_delta(graph_facts(modified), graph_facts(tiny_kg))
        assert added == back_removed and removed == back_added

    def test_perfect_repair_scores_one(self, small_kg_workload):
        repaired, _ = repair_graph(small_kg_workload.dirty, small_kg_workload.rules)
        quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                 repaired, small_kg_workload.ground_truth)
        assert quality.precision > 0.95
        assert quality.recall > 0.9
        assert 0.0 <= quality.f1 <= 1.0
        assert quality.performed_changes >= quality.correct_changes

    def test_no_op_repair_scores_zero_recall(self, small_kg_workload):
        quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                 small_kg_workload.dirty.copy(),
                                 small_kg_workload.ground_truth)
        assert quality.recall == 0.0
        assert quality.missed_changes == quality.needed_changes

    def test_identical_graphs_restored_exactly(self, small_kg_dataset):
        assert graph_restored_exactly(small_kg_dataset.clean,
                                      small_kg_dataset.clean.copy())

    def test_quality_describe_and_dict(self, small_kg_workload):
        repaired, _ = repair_graph(small_kg_workload.dirty, small_kg_workload.rules)
        quality = repair_quality(small_kg_workload.clean, small_kg_workload.dirty,
                                 repaired, small_kg_workload.ground_truth)
        assert "precision" in quality.describe()
        assert set(quality.as_dict()) >= {"precision", "recall", "f1", "recall_by_kind"}


class TestChangeSummary:
    def test_summary_of_real_repair(self, small_kg_workload):
        repaired, _ = repair_graph(small_kg_workload.dirty, small_kg_workload.rules)
        summary = change_summary(small_kg_workload.clean, small_kg_workload.dirty, repaired)
        assert summary.facts_added >= 0 and summary.facts_removed > 0
        assert 0.0 < summary.preservation_ratio <= 1.0
        assert summary.edit_distance_from_dirty > 0
        assert summary.residual_distance_to_clean < summary.edit_distance_from_dirty * 10
        assert "preservation_ratio" in summary.as_dict()

    def test_no_op_preserves_everything(self, small_kg_workload):
        summary = change_summary(small_kg_workload.clean, small_kg_workload.dirty,
                                 small_kg_workload.dirty.copy())
        assert summary.preservation_ratio == 1.0
        assert summary.facts_removed == 0


class TestReportFormatting:
    ROWS = [
        {"method": "fast", "seconds": 1.23456, "ok": True, "nested": {"a": 1}},
        {"method": "naive", "seconds": 4.5, "ok": False, "nested": {"a": 2}},
    ]

    def test_format_table_aligns_and_includes_all_rows(self):
        text = format_table(self.ROWS, title="demo")
        assert "demo" in text and "fast" in text and "naive" in text
        assert "1.235" in text  # float formatting
        assert "yes" in text and "no" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_csv(self):
        text = format_csv(self.ROWS, columns=["method", "seconds"])
        assert text.splitlines()[0] == "method,seconds"
        assert len(text.splitlines()) == 3

    def test_format_series_selects_columns(self):
        text = format_series(self.ROWS, x_column="method", y_columns=["seconds"])
        assert "method" in text and "ok" not in text

    def test_summarize_rows_averages_per_group(self):
        rows = [{"scale": 10, "seconds": 1.0}, {"scale": 10, "seconds": 3.0},
                {"scale": 20, "seconds": 5.0}]
        summary = summarize_rows(rows, group_by="scale", value_columns=["seconds"])
        assert summary[0]["seconds"] == pytest.approx(2.0)
        assert summary[0]["runs"] == 2
        assert summary[1]["seconds"] == pytest.approx(5.0)
