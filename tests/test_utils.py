"""Unit tests for the shared utilities (ids, rng, timing)."""

from __future__ import annotations

import time

import pytest

from repro.utils import IdGenerator, SeededRNG, Stopwatch, TimingBreakdown, ensure_rng, timed
from repro.utils.rng import sample_without_replacement, weighted_choice, zipf_weights


class TestIdGenerator:
    def test_ids_are_unique_and_prefixed(self):
        generator = IdGenerator(prefix="n")
        ids = [generator.next() for _ in range(100)]
        assert len(set(ids)) == 100
        assert all(identifier.startswith("n") for identifier in ids)

    def test_observed_ids_are_skipped(self):
        generator = IdGenerator(prefix="n")
        generator.observe("n0")
        generator.observe_all(["n1", "n2"])
        assert generator.next() == "n3"

    def test_callable_shorthand(self):
        generator = IdGenerator(prefix="e")
        assert generator() == "e0"


class TestRng:
    def test_ensure_rng_accepts_seed_rng_and_none(self):
        rng = ensure_rng(42)
        assert isinstance(rng, SeededRNG)
        assert ensure_rng(rng) is rng
        default = ensure_rng(None)
        assert default.random() == ensure_rng(None).random()  # deterministic default

    def test_same_seed_same_sequence(self):
        first = ensure_rng(7)
        second = ensure_rng(7)
        assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]

    def test_zipf_weights_are_decreasing(self):
        weights = zipf_weights(10, 1.0)
        assert len(weights) == 10
        assert all(earlier >= later for earlier, later in zip(weights, weights[1:]))
        assert zipf_weights(0) == []

    def test_weighted_choice_validates_input(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        assert weighted_choice(rng, ["a", "b"], [0.0, 1.0]) == "b"

    def test_sample_without_replacement_caps_at_population(self):
        rng = ensure_rng(0)
        sample = sample_without_replacement(rng, range(3), 10)
        assert sorted(sample) == [0, 1, 2]


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.001)
        first = watch.elapsed
        with watch:
            time.sleep(0.001)
        assert watch.elapsed > first
        watch.reset()
        assert watch.elapsed == 0.0

    def test_stopwatch_misuse_raises(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            watch.stop()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_timing_breakdown_measure_and_merge(self):
        breakdown = TimingBreakdown()
        with breakdown.measure("phase-a"):
            time.sleep(0.001)
        breakdown.add("phase-b", 1.0)
        other = TimingBreakdown({"phase-b": 0.5, "phase-c": 0.25})
        merged = breakdown.merge(other)
        assert merged.get("phase-b") == pytest.approx(1.5)
        assert merged.get("phase-c") == pytest.approx(0.25)
        assert merged.total >= 1.75
        assert "phase-a" in merged.as_dict()

    def test_timed_context_manager(self):
        with timed() as elapsed:
            time.sleep(0.001)
        assert elapsed[0] > 0.0
