"""Sharded-vs-sequential equivalence across all three dataset generators.

The sharded backend's contract: for a fixed workload it is deterministic,
and its repaired graph is element-for-element identical to the sequential
fast backend's — shards, halos, worker pools, and delta merging must change
*how* the repair runs, never *what* it produces.  (The guarantee is stated
for conflict-free partitions; these workloads also exercise runs where the
merger detects and defers cross-shard conflicts, and equivalence still holds
because deferred repairs replay through the coordinator in the same
structural priority order.)

Most cases run the worker path inline (identical code and serialization
round-trip, no process startup) so the suite stays fast; one smoke case goes
through the real ``multiprocessing`` spawn pool end to end.
"""

from __future__ import annotations

import pytest

from repro.api import RepairConfig, RepairSession

WORKLOAD_FIXTURES = ("small_kg_workload", "small_movie_workload",
                     "small_social_workload")


@pytest.fixture(params=WORKLOAD_FIXTURES)
def workload(request):
    return request.getfixturevalue(request.param)


def _repair(graph, rules, config):
    repaired = graph.copy(name=f"{graph.name}-{config.backend}")
    with RepairSession(repaired, rules, config=config) as session:
        report = session.repair()
        fanout = getattr(session.backend, "last_fanout", None)
    return repaired, report, fanout


def _sharded(workers: int, **overrides) -> RepairConfig:
    # min_partition_nodes=1 so the small test workloads actually fan out
    return RepairConfig.sharded(workers=workers, parallel_inline=True,
                                min_partition_nodes=1, **overrides)


class TestShardedMatchesSequential:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_same_graph_and_fixpoint(self, workload, workers):
        reference, ref_report, _ = _repair(workload.dirty, workload.rules,
                                           RepairConfig.fast())
        repaired, report, fanout = _repair(workload.dirty, workload.rules,
                                           _sharded(workers))
        assert fanout.ran, "the test workload must actually fan out"
        assert repaired.structurally_equal(reference)
        assert report.reached_fixpoint == ref_report.reached_fixpoint
        assert report.remaining_violations == ref_report.remaining_violations
        assert report.repairs_applied == ref_report.repairs_applied

    def test_sharded_is_deterministic(self, workload):
        first, first_report, _ = _repair(workload.dirty, workload.rules,
                                         _sharded(3))
        second, second_report, _ = _repair(workload.dirty, workload.rules,
                                           _sharded(3))
        assert first.structurally_equal(second)
        assert first_report.repairs_applied == second_report.repairs_applied

    def test_sharded_batched_workers_agree(self, workload):
        """Workers draining their shard queues in batched mode must land on
        the same graph (batched == sequential composes with sharding)."""
        reference, _, _ = _repair(workload.dirty, workload.rules,
                                  RepairConfig.fast())
        repaired, report, _ = _repair(workload.dirty, workload.rules,
                                      _sharded(3).batched())
        assert repaired.structurally_equal(reference)
        assert report.reached_fixpoint


class TestShardedProcessPool:
    def test_spawn_pool_matches_sequential(self, small_kg_workload):
        """End-to-end through the real spawn pool (one small case: process
        startup dominates, the inline cases above cover the matrix)."""
        workload = small_kg_workload
        reference, _, _ = _repair(workload.dirty, workload.rules,
                                  RepairConfig.fast())
        config = RepairConfig.sharded(workers=2, min_partition_nodes=1)
        repaired, report, fanout = _repair(workload.dirty, workload.rules,
                                           config)
        assert fanout.ran and fanout.used_processes
        assert repaired.structurally_equal(reference)
        assert report.reached_fixpoint
