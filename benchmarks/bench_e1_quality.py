"""E1 — repair quality table (precision / recall / F1 per domain and method).

Reconstructs the paper's headline quality table: GRR repair (fast and naive,
identical quality) versus the relational-FD baseline, greedy deletion, and
detection-only, on all three synthetic domains with injected errors.
Expected shape: GRR dominates every baseline on F1 for every error class;
detect-only has zero repair recall; FD repair only helps on functional
conflicts and duplicate edges; greedy deletion trades recall for precision.
"""

from __future__ import annotations

from repro.experiments import defaults, run_e1_quality
from repro.metrics import format_table

COLUMNS = ("domain", "method", "precision", "recall", "f1",
           "recall_incompleteness", "recall_conflict", "recall_redundancy",
           "repairs_applied", "remaining_violations", "seconds")


def test_e1_repair_quality(run_once, save_table):
    config = defaults()
    rows = run_once(run_e1_quality, config=config)
    save_table("e1_quality", format_table(
        rows, columns=[c for c in COLUMNS if any(c in row for row in rows)],
        title="E1 — repair quality per domain and method "
              f"(scale={config.quality_scale}, error rate={config.quality_error_rate})"))

    by_key = {(row["domain"], row["method"]): row for row in rows}
    for domain in config.quality_domains:
        grr = by_key[(domain, "grr-fast")]
        assert grr["f1"] > 0.9, f"GRR repair should score highly on {domain}"
        for baseline in ("fd-relational", "detect-only", "greedy-delete"):
            if (domain, baseline) in by_key:
                assert grr["f1"] >= by_key[(domain, baseline)]["f1"], \
                    f"GRR must dominate {baseline} on {domain}"
        if (domain, "detect-only") in by_key:
            assert by_key[(domain, "detect-only")]["recall"] == 0.0
        if (domain, "grr-naive") in by_key:
            assert abs(grr["f1"] - by_key[(domain, "grr-naive")]["f1"]) < 1e-9
