"""Perf-regression gate: fail when the hot path got >25% slower than baseline.

Re-runs the ``perf_baseline`` measurements and compares every timing metric
against the most recent committed entry (same mode) in ``BENCH_repair.json``.
Exits non-zero when any timing regressed beyond the threshold, so it can run
as a tier-2 CI gate::

    PYTHONPATH=src python benchmarks/check_regression.py            # quick mode
    PYTHONPATH=src python benchmarks/check_regression.py --mode full
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.10

Deterministic work counters (matches enumerated, repairs applied) are also
compared: a drift there means the *workload* changed and the timing baseline
should be re-recorded with ``perf_baseline.py`` — reported as a warning so an
intentional algorithmic change does not hard-fail the gate on counters alone.

Exception: the counters in ``GATED_COUNTER_KEYS`` (warm-pool spawns after
warm-up, the scale tier's repair count, ``nodes_tried``, the planner's
plan/replan counts, and the durability scenario's replay counters) hard-fail
on any drift.  They are the contract that the hot path does the *same work* — a
change that moves them must re-record the baseline in the same commit, which
makes every counter shift a deliberate, reviewed event in the trajectory.

Host-awareness: baseline entries record the host fingerprint (hostname +
core count).  When the baseline was recorded on a *different* host — or
predates the fingerprint — the wall-clock comparisons are reported but do
not gate (a different machine's timings are noise, not signal); the
deterministic counters gate regardless of host.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from perf_baseline import (  # noqa: E402
    COUNTER_KEYS,
    DEFAULT_OUTPUT,
    GATED_COUNTER_KEYS,
    TIMING_KEYS,
    host_fingerprint,
    latest_entry,
    load_trajectory,
    measure,
)

DEFAULT_THRESHOLD = 0.25


def same_host(baseline_entry: dict) -> bool:
    """Whether the baseline's host fingerprint matches this machine.

    Entries that predate the fingerprint count as a different host: their
    timings cannot be attributed to this machine.
    """
    fingerprint = host_fingerprint()
    return all(baseline_entry.get(key) == value
               for key, value in fingerprint.items())


def compare(baseline_results: dict, current_results: dict,
            threshold: float = DEFAULT_THRESHOLD,
            gate_timings: bool = True) -> tuple[list[str], list[str]]:
    """Return (regressions, warnings) comparing current against baseline.

    With ``gate_timings=False`` (baseline from a different host) timing
    overruns are demoted to warnings; counter drift gates as usual.
    """
    regressions: list[str] = []
    warnings: list[str] = []
    for domain, baseline in baseline_results.items():
        current = current_results.get(domain)
        if current is None:
            warnings.append(f"{domain}: missing from current measurements")
            continue
        for key in COUNTER_KEYS:
            if key in baseline and baseline[key] != current.get(key):
                message = (f"{domain}.{key}: counter drift "
                           f"(baseline {baseline[key]}, "
                           f"current {current.get(key)}) — "
                           f"re-record the baseline if intentional")
                if key in GATED_COUNTER_KEYS:
                    regressions.append(message)
                else:
                    warnings.append(message)
        for key in TIMING_KEYS:
            if key not in baseline or key not in current:
                continue
            base_val = float(baseline[key])
            cur_val = float(current[key])
            if base_val <= 0.0:
                continue
            ratio = cur_val / base_val
            if ratio > 1.0 + threshold:
                message = (
                    f"{domain}.{key}: {base_val:.4f}s -> {cur_val:.4f}s "
                    f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)")
                if gate_timings:
                    regressions.append(message)
                else:
                    warnings.append(f"{message} — not gated: baseline is "
                                    f"from a different host")
    return regressions, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", default="quick")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional slowdown (0.25 = +25%%)")
    args = parser.parse_args(argv)

    trajectory = load_trajectory(args.baseline)
    baseline = latest_entry(trajectory, args.mode)
    if baseline is None:
        print(f"no {args.mode!r} baseline entry in {args.baseline}; "
              f"record one with perf_baseline.py first")
        return 2

    gate_timings = same_host(baseline)
    current = measure(args.mode)
    regressions, warnings = compare(baseline["results"], current,
                                    args.threshold, gate_timings=gate_timings)

    print(f"baseline: {baseline['label']!r} @ {baseline['timestamp']}")
    if not gate_timings:
        fingerprint = host_fingerprint()
        print(f"NOTE: baseline host "
              f"{baseline.get('host')!r}/{baseline.get('cpu_count')} cores "
              f"!= current {fingerprint['host']!r}/"
              f"{fingerprint['cpu_count']} cores — wall-clock gates skipped, "
              f"counters still gate")
    for domain, row in current.items():
        base = baseline["results"].get(domain, {})
        deltas = ", ".join(
            f"{key.removesuffix('_seconds')} {base.get(key, float('nan')):.3f}->"
            f"{row[key]:.3f}s" for key in TIMING_KEYS if key in row)
        print(f"  {domain}: {deltas}")
    for warning in warnings:
        print(f"WARNING: {warning}")
    if regressions:
        print(f"\nPERF REGRESSION (timing > {args.threshold:.0%} slower than "
              f"baseline, or gated-counter drift):")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print("\nno perf regression detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
