"""E5 — ablation of the fast algorithm's optimisations (figure).

Runs the fast repairer with each optimisation disabled in turn: the candidate
index, pattern decomposition, and incremental match maintenance (the last one
is realised as the naive loop with optimised matching, i.e. only the
maintenance strategy differs).  Expected shape: every variant produces the
same repairs (identical F1); disabling an optimisation costs runtime, with
pattern decomposition and the candidate index dominating at Python scales
(see EXPERIMENTS.md for the measured ranking and the discussion of where it
deviates from the paper's).
"""

from __future__ import annotations

from repro.experiments import defaults, run_e5_ablation
from repro.metrics import format_table

COLUMNS = ("disabled_optimisation", "method", "seconds", "repairs_applied",
           "violations_detected", "f1")


def test_e5_optimisation_ablation(run_once, save_table):
    config = defaults()
    rows = run_once(run_e5_ablation, config=config)
    save_table("e5_ablation", format_table(
        rows, columns=list(COLUMNS),
        title=f"E5 — optimisation ablation (domain={config.ablation_domain}, "
              f"scale={config.ablation_scale})"))

    by_variant = {row["disabled_optimisation"]: row for row in rows}
    assert set(by_variant) == {"none", "index", "decomposition", "incremental"}
    # the outcome (quality, number of repairs) is identical across variants
    f1_values = {round(row["f1"], 9) for row in rows}
    assert len(f1_values) == 1
    repairs = {row["repairs_applied"] for row in rows}
    assert len(repairs) == 1
    # disabling decomposition must not be free
    assert by_variant["decomposition"]["seconds"] >= by_variant["none"]["seconds"] * 0.8
