"""E7 — subgraph-matching cost versus pattern size (figure).

Measures pure match-enumeration time for connected patterns of 2–6 variables
over the movie catalogue, under the four matcher configurations (naive,
index-only, decomposition-only, both).  Expected shape: matching cost grows
steeply with pattern size; every configuration returns exactly the same match
set; the optimised configurations reduce the number of candidate nodes tried
(the measured effect of each optimisation at these scales is discussed in
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments import defaults, run_e7_pattern_size
from repro.metrics import format_table

COLUMNS = ("pattern_size", "variant", "seconds", "matches", "nodes_tried")


def test_e7_matching_cost_vs_pattern_size(run_once, save_table):
    config = defaults()
    rows = run_once(run_e7_pattern_size, config=config)
    save_table("e7_pattern_size", format_table(
        rows, columns=list(COLUMNS),
        title=f"E7 — matching cost vs pattern size (movies domain, "
              f"scale={config.pattern_scale})"))

    # every variant finds the same number of matches at every size
    sizes = {row["pattern_size"] for row in rows}
    for size in sizes:
        match_counts = {row["matches"] for row in rows if row["pattern_size"] == size}
        assert len(match_counts) == 1
    # matching the largest pattern costs more than the smallest (per variant)
    for variant in {row["variant"] for row in rows}:
        per_variant = {row["pattern_size"]: row["seconds"] for row in rows
                       if row["variant"] == variant}
        assert per_variant[max(sizes)] >= per_variant[min(sizes)]
