"""E4 — repair quality and runtime versus injected error rate (figure).

Reconstructs the robustness figure: the same knowledge graph is corrupted at
increasing error rates and repaired with both algorithms.  Expected shape:
runtime grows with the error rate (more violations, more repairs); F1 stays
high and degrades gracefully; the two algorithms' quality is identical
because they share the same fixpoint semantics.
"""

from __future__ import annotations

from repro.experiments import defaults, run_e4_error_rate
from repro.metrics import format_table

COLUMNS = ("error_rate", "injected_errors", "method", "seconds",
           "repairs_applied", "precision", "recall", "f1")


def test_e4_quality_and_runtime_vs_error_rate(run_once, save_table):
    config = defaults()
    rows = run_once(run_e4_error_rate, config=config)
    save_table("e4_error_rate", format_table(
        rows, columns=list(COLUMNS),
        title=f"E4 — quality and runtime vs error rate "
              f"(domain={config.error_domain}, scale={config.error_scale})"))

    fast_rows = [row for row in rows if row["method"] == "grr-fast"]
    assert all(row["f1"] > 0.85 for row in fast_rows), "quality must degrade gracefully"
    lowest = min(fast_rows, key=lambda row: row["error_rate"])
    highest = max(fast_rows, key=lambda row: row["error_rate"])
    assert highest["repairs_applied"] > lowest["repairs_applied"]
    # identical quality across algorithms at every rate
    by_rate_fast = {row["error_rate"]: row["f1"] for row in rows
                    if row["method"] == "grr-fast"}
    by_rate_naive = {row["error_rate"]: row["f1"] for row in rows
                     if row["method"] == "grr-naive"}
    for rate, f1 in by_rate_naive.items():
        assert abs(f1 - by_rate_fast[rate]) < 1e-9
