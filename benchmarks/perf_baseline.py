"""Perf-baseline harness: time the matcher and both repairers, track trajectory.

Measures, for each of the three dataset domains (``kg``, ``movies``,
``social``):

* ``match_seconds`` — full enumeration of every rule pattern with the
  optimised matcher (index + decomposition);
* ``fast_seconds`` — end-to-end fast repair through a
  :class:`~repro.api.RepairSession` (the paper's efficient algorithm: index +
  decomposition + incremental maintenance);
* ``naive_seconds`` — end-to-end naive repair (full re-detection per round);
* ``batched_seconds`` — the fast session with **batched** queue draining
  (independent violations repaired under one merged incremental pass);
* ``sharded_seconds`` — (kg domain only: the ``sharded-kg`` scenario) the
  sharded multi-process backend at 4 workers through the real spawn pool,
  measured once per invocation (process startup dominates repeats) and
  compared against ``batched_seconds``; excluded from the regression gate's
  timing keys because pool startup is host-load dependent, but its
  deterministic work counters are tracked;
* the ``service-kg`` scenario (kg domain only) — warm-pool vs cold-spawn
  repair through ``repro.service``: one sharded tenant driven through
  repair → (edit → repair) × N on a persistent warm pool and again on the
  cold per-call pool.  Wall-clock per call is recorded (not gated — spawn
  cost is host-load dependent); the *overhead counters* are gated:
  ``service_warm_spawns_after_warmup`` must stay 0 (nothing spawns once the
  pool is warm — the whole point), and the warm/cold repair counts must
  agree with each other;
* the ``scale-kg`` scenario (kg domain only) — the large-graph tier:
  kg@1500 in quick mode, kg@4000 in full mode, measured once (matching +
  fast repair wall-clock, the deterministic work counters, and the
  ``tracemalloc`` peak of a full repair-a-copy run — the memory-footprint
  trajectory of the slotted graph core).  The work counters are **hard
  gates** in ``check_regression.py`` (see ``GATED_COUNTER_KEYS``): a drift
  means the matcher does different work at scale and the baseline must be
  re-recorded deliberately;
* the ``recovery-kg`` scenario (kg domain only) — durable serve through
  ``repro.durability`` (fsync'd WAL + periodic snapshots) under the same
  deterministic traffic as the service scenario, then a timed cold restore
  (``recovery_seconds``, a gated timing key) and the replay counters
  (committed sequence, records/changes replayed, snapshots written —
  **hard gates**: identical traffic must produce an identical durable
  history);
* the ``chaos-kg`` scenario (kg domain only) — scripted faults
  (:mod:`repro.testing.faults`) through the supervised pool: a worker
  crash mid-repair must heal (respawn + rebind + one retry) to the exact
  sequential result, and persistent errors must trip the circuit breaker
  into the sequential-drain fallback — the respawn/retry/fallback counters
  and both equivalence bits are **hard gates**;
* the ``service-traffic`` scenario (kg domain only) — the ``repro.ingest``
  front under load: a deterministic manual-tick phase whose scheduler
  ticks, admission rejections, and coalesced-delta counts are **hard
  gates**, plus a live phase (background scheduler + asyncio clients with
  one flooding tenant) recording sustained edits/sec and the steady
  tenant's commit→repaired p50/p99 (the p99 joins the host-aware
  wall-clock gates);

plus the deterministic work counters (repairs applied, violations detected,
matches enumerated, nodes tried, and the incremental ``maintenance_passes``
of the sequential vs batched drains — the batch-deltas win recorded in the
trajectory) that let a regression checker distinguish "the machine is
slower" from "the algorithm does more work".

Each invocation appends one entry to ``BENCH_repair.json`` (the *trajectory*)
so the perf history of the repo is recorded alongside the code.  The last
entry for a given mode is the baseline that ``check_regression.py`` compares
against.  Entries record the host fingerprint (hostname + core count):
wall-clock gates only apply when the baseline was recorded on the same
host, while the deterministic work counters gate everywhere.

Usage::

    PYTHONPATH=src python benchmarks/perf_baseline.py --mode quick --label "my change"
    PYTHONPATH=src python benchmarks/perf_baseline.py --mode full

``--dry-run`` prints the measurements without touching the JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro.api import RepairConfig, repair_copy
from repro.datasets.registry import build_workload
from repro.matching.matcher import Matcher, MatcherConfig

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_repair.json"
SCHEMA_VERSION = 1

# Per-mode measurement grids: deterministic workloads (fixed seed) so the
# work counters are exactly reproducible and only wall-clock varies.
MODES: dict[str, dict[str, Any]] = {
    "quick": {"scales": {"kg": 200, "movies": 150, "social": 150},
              "error_rate": 0.05, "seed": 0, "repeats": 3},
    "full": {"scales": {"kg": 800, "movies": 400, "social": 400},
             "error_rate": 0.05, "seed": 0, "repeats": 3},
}

# sharded_seconds is deliberately NOT a gated timing key: spawn-pool startup
# varies with host load, and on single-core hosts the scenario measures
# overhead, not speedup (see docs/PARALLEL.md "when sharding wins").
# traffic_p99_seconds is informational for the same reason the warm-pool and
# recovery percentiles are: it is read from a fixed-bucket histogram, so the
# p99 is quantised to bucket bounds and flips between adjacent buckets (an
# apparent 2x) on scheduler-timing noise; the traffic scenario's teeth are
# its deterministic gated counters (ticks / rejections / coalesced).
TIMING_KEYS = ("match_seconds", "fast_seconds", "naive_seconds",
               "batched_seconds", "scale_match_seconds", "scale_fast_seconds",
               "recovery_seconds")
COUNTER_KEYS = ("matches", "fast_repairs_applied", "fast_violations_detected",
                "fast_nodes_tried", "naive_repairs_applied",
                "fast_maintenance_passes",
                "batched_maintenance_passes", "sharded_repairs_applied",
                "sharded_accepted", "sharded_rejected",
                "service_warm_repairs", "service_cold_repairs",
                "service_warm_spawns_after_warmup", "service_warm_binds",
                "service_warm_ships",
                "scale_matches", "scale_repairs_applied",
                "scale_violations_detected", "scale_nodes_tried",
                "scale_range_bucket_candidates", "scale_planner_plans",
                "scale_planner_replans",
                "recovery_sequence", "recovery_records_replayed",
                "recovery_changes_replayed", "recovery_snapshots_written",
                "traffic_scheduler_ticks", "traffic_admission_rejections",
                "traffic_coalesced_deltas", "traffic_committed",
                "traffic_repairs",
                "chaos_respawns", "chaos_retries", "chaos_worker_deaths",
                "chaos_repairs_applied", "chaos_fallback_repairs",
                "chaos_crash_equal", "chaos_fallback_equal")

# Deterministic counters that HARD-FAIL the regression gate on any drift
# (instead of warning): the warm pool must never spawn after warm-up, and the
# scale tier's work counters are the contract that the matcher does the same
# work on large graphs — an intentional algorithmic change must re-record the
# baseline in the same commit.  The planner counters pin the cost planner's
# decisions at scale: a plan-count or replan-count drift means the planner
# reacts differently to the same statistics.  The recovery counters pin the
# durability pipeline: the committed history's length, the snapshot cadence,
# and the replay tail must all be exactly reproducible — a drift means the
# WAL records different traffic for the same workload.
GATED_COUNTER_KEYS = ("service_warm_spawns_after_warmup",
                      "scale_repairs_applied", "scale_nodes_tried",
                      "scale_planner_plans", "scale_planner_replans",
                      "recovery_sequence", "recovery_records_replayed",
                      "recovery_changes_replayed",
                      "recovery_snapshots_written",
                      "traffic_scheduler_ticks",
                      "traffic_admission_rejections",
                      "traffic_coalesced_deltas",
                      "chaos_respawns", "chaos_retries",
                      "chaos_fallback_repairs",
                      "chaos_crash_equal", "chaos_fallback_equal")


def host_fingerprint() -> dict[str, Any]:
    """What the wall-clock gates are conditioned on: timings recorded on a
    different machine (or core count) are not comparable, while the
    deterministic work counters always are."""
    return {"host": platform.node(), "cpu_count": os.cpu_count()}

#: the sharded scenario runs only where fan-out has enough work to mean
#: anything: the kg domain at each mode's scale, 4 workers
SHARDED_DOMAIN = "kg"
SHARDED_WORKERS = 4

#: the scale tier runs the kg domain far past the regular grid: large enough
#: that per-element overhead and index quality dominate, small enough that a
#: quick-mode run stays interactive
SCALE_TIERS = {"quick": 1500, "full": 4000}


def _best_of(repeats: int, func) -> tuple[float, Any]:
    """Minimum wall-clock over ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def measure_domain(domain: str, scale: int, error_rate: float, seed: int,
                   repeats: int) -> dict[str, Any]:
    """One domain's measurements (timings + deterministic work counters)."""
    workload = build_workload(domain, scale=scale, error_rate=error_rate, seed=seed)

    def run_matching():
        matcher = Matcher(workload.dirty, MatcherConfig.optimized(), maintain_index=False)
        found = sum(len(matcher.find_matches(rule.pattern)) for rule in workload.rules)
        matcher.close()
        return found

    match_seconds, matches = _best_of(repeats, run_matching)

    def run_session(config):
        return lambda: repair_copy(workload.dirty, workload.rules,
                                   config=config)[1]

    fast_seconds, fast_report = _best_of(repeats, run_session(RepairConfig.fast()))
    naive_seconds, naive_report = _best_of(repeats, run_session(RepairConfig.naive()))
    # The batched-session scenario: same workload, queue drained in batches of
    # independent violations maintained under one merged incremental pass —
    # the trajectory records both wall-clock and the maintenance-pass saving.
    batched_seconds, batched_report = _best_of(
        repeats, run_session(RepairConfig.fast().batched()))

    sharded: dict[str, Any] = {}
    if domain == SHARDED_DOMAIN:
        sharded = measure_sharded(workload)
        sharded.update(measure_service(workload))
        sharded.update(measure_recovery(workload))
        sharded.update(measure_traffic(workload))
        sharded.update(measure_chaos(workload))

    return {
        **sharded,
        "scale": scale,
        "nodes": workload.dirty.num_nodes,
        "edges": workload.dirty.num_edges,
        "match_seconds": round(match_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "naive_seconds": round(naive_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "matches": matches,
        "fast_repairs_applied": fast_report.repairs_applied,
        "fast_violations_detected": fast_report.violations_detected,
        "fast_nodes_tried": fast_report.matching_stats.nodes_tried,
        "fast_maintenance_passes": fast_report.matching_stats.maintenance_passes,
        "naive_repairs_applied": naive_report.repairs_applied,
        "fast_reached_fixpoint": fast_report.reached_fixpoint,
        "batched_repairs_applied": batched_report.repairs_applied,
        "batched_maintenance_passes":
            batched_report.matching_stats.maintenance_passes,
        "batched_reached_fixpoint": batched_report.reached_fixpoint,
    }


def measure_sharded(workload) -> dict[str, Any]:
    """The ``sharded-<domain>`` scenario: one end-to-end repair through the
    multi-process backend (real spawn pool), plus fan-out diagnostics."""
    from repro.api import RepairSession

    graph = workload.dirty.copy(name=f"{workload.dirty.name}-sharded")
    config = RepairConfig.sharded(workers=SHARDED_WORKERS)
    started = time.perf_counter()
    with RepairSession(graph, workload.rules, config=config) as session:
        report = session.repair()
        fanout = session.backend.last_fanout
    elapsed = time.perf_counter() - started
    return {
        "sharded_seconds": round(elapsed, 4),
        "sharded_workers": SHARDED_WORKERS,
        "sharded_shards": fanout.shards,
        "sharded_repairs_applied": report.repairs_applied,
        "sharded_accepted": fanout.accepted,
        "sharded_rejected": fanout.rejected,
        "sharded_halo_fraction": round(fanout.halo_fraction, 3),
        "sharded_reached_fixpoint": report.reached_fixpoint,
    }


def _service_corrupt(graph, seed: int) -> None:
    """Deterministic violation-producing edits for the service scenario."""
    import random

    rng = random.Random(seed)
    edge_ids = graph.edge_ids()
    for edge_id in rng.sample(edge_ids, min(10, len(edge_ids))):
        if graph.has_edge(edge_id):
            graph.remove_edge(edge_id)
    edge_ids = graph.edge_ids()
    for edge_id in rng.sample(edge_ids, min(6, len(edge_ids))):
        edge = graph.edge(edge_id)
        graph.add_edge(edge.source, edge.target, edge.label,
                       dict(edge.properties))


#: edit→repair rounds the service scenario drives after the initial repair
SERVICE_ROUNDS = 3

#: durability knobs for the ``recovery-kg`` scenario: enough edit→repair
#: rounds and a small snapshot cadence that the restore path exercises both
#: a snapshot load and a WAL replay tail (each service call commits one
#: changefeed record, so 1 + 2×rounds records total)
RECOVERY_ROUNDS = 8
RECOVERY_SNAPSHOT_EVERY = 4


def measure_service(workload) -> dict[str, Any]:
    """The ``service-kg`` scenario: warm-pool vs cold-spawn repeated repair.

    Both sides run the same drive — initial repair, then
    ``SERVICE_ROUNDS`` rounds of (commit deterministic edits → repair) —
    through the sharded backend at ``SHARDED_WORKERS`` with real spawn
    pools.  Warm keeps one persistent pool with standing shard replicas
    (deltas shipped between calls); cold spawns a fresh pool and rebuilds
    every shard per call.  The per-call overhead counters are the gated
    result: after the first warm call, spawns must be 0.
    """
    from repro import telemetry
    from repro.api import RepairConfig, RepairSession
    from repro.service import GraphRepairService

    def drive(repair, apply, after_first=None):
        seconds = []
        repairs = 0
        started = time.perf_counter()
        repairs += repair().repairs_applied
        seconds.append(time.perf_counter() - started)
        if after_first is not None:
            after_first()
        for round_index in range(SERVICE_ROUNDS):
            apply(lambda g, s=round_index: _service_corrupt(g, s))
            started = time.perf_counter()
            repairs += repair().repairs_applied
            seconds.append(time.perf_counter() - started)
        return seconds, repairs

    # warm: one persistent pool, standing replicas, delta shipping
    spawns_at_warmup = 0

    def record_warmup():
        nonlocal spawns_at_warmup
        spawns_at_warmup = service.pool_stats["spawns"]

    # telemetry collects the warm drive so the trajectory records repair
    # latency percentiles (informational — not regression-gated; the wall
    # clocks above stay the gateable measurements)
    with telemetry.collecting() as (registry, _tracer):
        with GraphRepairService() as service:
            session = service.serve("bench", workload.dirty.copy(name="bench"),
                                    workload.rules, shards=SHARDED_WORKERS)
            warm_seconds, warm_repairs = drive(
                lambda: service.repair("bench"),
                lambda edit: service.apply("bench", edit),
                after_first=record_warmup)
            stats = service.pool_stats
            spawns_after_warmup = stats["spawns"] - spawns_at_warmup
            # informational (not gated): how much of the graph the standing
            # replicas own, and how evenly — the shard-balance trajectory
            # the online-repartitioning roadmap item will push toward 1.0
            coverage, balance = session.backend.ownership_coverage()
    repair_family = registry.get("repro_repair_seconds")

    # cold: the per-call spawn pool (PR-3 behaviour)
    cold_graph = workload.dirty.copy(name="bench-cold")
    with RepairSession(cold_graph, workload.rules,
                       config=RepairConfig.sharded(
                           workers=SHARDED_WORKERS)) as session:
        cold_seconds, cold_repairs = drive(session.repair, session.apply)

    return {
        "service_workers": SHARDED_WORKERS,
        "service_rounds": SERVICE_ROUNDS,
        # histogram-estimated warm per-call latency percentiles (bucketed
        # linear interpolation — see repro.telemetry.quantile_from_buckets)
        "service_warm_p50_seconds": round(repair_family.quantile(0.50), 4),
        "service_warm_p95_seconds": round(repair_family.quantile(0.95), 4),
        "service_warm_p99_seconds": round(repair_family.quantile(0.99), 4),
        "service_warm_first_seconds": round(warm_seconds[0], 4),
        "service_warm_call_seconds": round(
            sum(warm_seconds[1:]) / max(len(warm_seconds) - 1, 1), 4),
        "service_cold_call_seconds": round(
            sum(cold_seconds[1:]) / max(len(cold_seconds) - 1, 1), 4),
        "service_warm_repairs": warm_repairs,
        "service_cold_repairs": cold_repairs,
        "service_warm_spawns_total": stats["spawns"],
        "service_warm_spawns_after_warmup": spawns_after_warmup,
        "service_warm_binds": stats["binds"],
        "service_warm_ships": stats["deltas_shipped"],
        "service_ownership_coverage": round(coverage, 3),
        "service_shard_balance": round(balance, 3),
    }


def measure_recovery(workload) -> dict[str, Any]:
    """The ``recovery-kg`` scenario: durable serve → shutdown → cold restore.

    Serves the kg workload durably (fsync'd WAL) and drives the service
    scenario's deterministic repair → (edit → repair) × ``RECOVERY_ROUNDS``
    traffic, then closes the service and times a cold
    :func:`repro.durability.recover` of the tenant from snapshot + WAL
    (best-of-3 — recovery is read-only, so it repeats cleanly).
    ``recovery_seconds`` joins the timing gates; the replay counters
    (committed sequence, records and changes replayed, snapshots written)
    are **hard gates** — identical traffic must produce an identical
    durable history, snapshot cadence, and replay tail.
    """
    import shutil
    import tempfile

    from repro.durability import DurabilityConfig, recover
    from repro.service import GraphRepairService

    root = Path(tempfile.mkdtemp(prefix="repro-recovery-"))
    try:
        config = DurabilityConfig(dir=root,
                                  snapshot_every=RECOVERY_SNAPSHOT_EVERY,
                                  fsync=True)
        started = time.perf_counter()
        with GraphRepairService() as service:
            service.serve("bench", workload.dirty.copy(name="bench"),
                          workload.rules, durable=config)
            service.repair("bench")
            for round_index in range(RECOVERY_ROUNDS):
                service.apply("bench",
                              lambda g, s=round_index: _service_corrupt(g, s))
                service.repair("bench")
            live = service.graph("bench")
            live_nodes, live_edges = live.num_nodes, live.num_edges
            stats = service.durability("bench").stats()
        serve_seconds = time.perf_counter() - started

        recovery_seconds, recovered = _best_of(
            3, lambda: recover("bench", config))

        # one extra (untimed) recovery under telemetry for the per-record
        # replay-latency percentiles; kept out of the best-of above so the
        # gated recovery_seconds measures the uninstrumented path
        from repro import telemetry

        with telemetry.collecting() as (registry, _tracer):
            recover("bench", config)
        replay_family = registry.get("repro_recovery_replay_seconds")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "recovery_serve_seconds": round(serve_seconds, 4),
        "recovery_seconds": round(recovery_seconds, 4),
        # per-record WAL replay latency percentiles (informational)
        "recovery_replay_p50_seconds": round(
            replay_family.quantile(0.50), 6) if replay_family else 0.0,
        "recovery_replay_p95_seconds": round(
            replay_family.quantile(0.95), 6) if replay_family else 0.0,
        "recovery_replay_p99_seconds": round(
            replay_family.quantile(0.99), 6) if replay_family else 0.0,
        "recovery_sequence": recovered.sequence,
        "recovery_snapshot_sequence": recovered.snapshot_sequence,
        "recovery_records_replayed": recovered.records_replayed,
        "recovery_changes_replayed": recovered.changes_replayed,
        "recovery_snapshots_written": stats["snapshots_written"],
        "recovery_exact": (recovered.graph.num_nodes == live_nodes
                           and recovered.graph.num_edges == live_edges),
    }


#: service-traffic deterministic phase: submit/tick rounds and batch sizes.
#: Each round submits TRAFFIC_BATCH edits to the steady tenant (large quota)
#: and TRAFFIC_FLOOD_BATCH to the flooding tenant (quota
#: TRAFFIC_FLOOD_QUOTA, reject policy), then runs one manual scheduler
#: tick — so ticks, rejections (flood batch minus quota per round), and
#: coalesced deltas are exact, reproducible numbers (hard gates).
TRAFFIC_ROUNDS = 10
TRAFFIC_BATCH = 16
TRAFFIC_FLOOD_BATCH = 12
TRAFFIC_FLOOD_QUOTA = 8

#: service-traffic live phase: event-loop clients over the running
#: scheduler (threaded ticks), measuring sustained edits/sec and the
#: commit→repaired latency percentiles from the telemetry histogram
TRAFFIC_CLIENTS = 6
TRAFFIC_EDITS_PER_CLIENT = 20
TRAFFIC_LIVE_FLOOD = 100
TRAFFIC_TICK_INTERVAL = 0.01


def measure_traffic(workload) -> dict[str, Any]:
    """The ``service-traffic`` scenario: the ingest front under load.

    Two phases over the kg workload:

    * **deterministic** — manual ``tick()`` driving: ``TRAFFIC_ROUNDS``
      rounds of (submit steady batch + overflow the flooding tenant's
      reject-policy queue → one scheduler pass).  Scheduler ticks,
      admission rejections, and the coalesced-delta count are exact
      functions of the submit pattern — **hard gates** in
      ``check_regression.py``: a drift means the scheduler batches or
      admits differently for the same traffic;
    * **live** — the background scheduler thread plus an asyncio
      ``AsyncRepairService``: ``TRAFFIC_CLIENTS`` well-behaved clients
      await every commit while a flooding client hammers a tiny
      reject-policy queue.  Records sustained committed edits/sec and the
      steady tenant's commit→repaired p50/p99 (from the
      ``repro_ingest_commit_to_repaired_seconds`` histogram).  The p99
      joins the host-aware wall-clock gates: a flooding tenant must not
      raise the steady tenant's tail latency beyond the threshold.
    """
    import asyncio

    from repro import telemetry
    from repro.ingest import (AdmissionError, AsyncRepairService,
                              IngestConfig, IngestFront, TenantQuota)
    from repro.service import GraphRepairService

    def touch(node_id, key, value):
        return lambda graph: graph.update_node(node_id, {key: value})

    results: dict[str, Any] = {
        "traffic_rounds": TRAFFIC_ROUNDS,
        "traffic_clients": TRAFFIC_CLIENTS,
    }

    with GraphRepairService(inline_pool=True) as service:
        # -- deterministic phase: manual ticks, exact counters ----------
        service.serve("steady", workload.dirty.copy(name="steady"),
                      workload.rules)
        service.serve("flood", workload.dirty.copy(name="flood"),
                      workload.rules)
        steady_node = next(iter(service.sessions.get("steady")
                                .graph.nodes())).id
        flood_node = next(iter(service.sessions.get("flood")
                               .graph.nodes())).id
        rejected = 0
        with IngestFront(service) as front:
            front.register("steady", TenantQuota(
                max_pending=1024, max_coalesce=TRAFFIC_BATCH))
            front.register("flood", TenantQuota(
                max_pending=TRAFFIC_FLOOD_QUOTA, policy="reject"))
            for round_index in range(TRAFFIC_ROUNDS):
                for i in range(TRAFFIC_BATCH):
                    front.submit("steady",
                                 touch(steady_node, f"r{round_index}_{i}", i))
                for i in range(TRAFFIC_FLOOD_BATCH):
                    try:
                        front.submit(
                            "flood",
                            touch(flood_node, f"f{round_index}_{i}", i))
                    except AdmissionError:
                        rejected += 1
                front.tick()
            stats = front.stats()
            per_tenant = stats["tenants"]
            results.update({
                "traffic_scheduler_ticks": stats["ticks"],
                "traffic_admission_rejections": rejected,
                "traffic_coalesced_deltas":
                    sum(t["coalesced"] for t in per_tenant.values()),
                "traffic_committed":
                    sum(t["committed"] for t in per_tenant.values()),
                "traffic_repairs":
                    sum(t["repairs"] for t in per_tenant.values()),
            })

        # -- live phase: background scheduler + asyncio clients ---------
        service.serve("steady-live", workload.dirty.copy(name="steady-live"),
                      workload.rules)
        service.serve("flood-live", workload.dirty.copy(name="flood-live"),
                      workload.rules)
        live_steady = next(iter(service.sessions.get("steady-live")
                                .graph.nodes())).id
        live_flood = next(iter(service.sessions.get("flood-live")
                               .graph.nodes())).id
        live_rejected = 0
        with telemetry.collecting() as (registry, _tracer):
            config = IngestConfig(tick_interval=TRAFFIC_TICK_INTERVAL)
            with IngestFront(service, config) as front:
                front.register("steady-live", TenantQuota(max_pending=1024))
                front.register("flood-live", TenantQuota(
                    max_pending=TRAFFIC_FLOOD_QUOTA, policy="reject"))
                front.start()
                aio = AsyncRepairService(front)

                async def steady_client(client_id):
                    for i in range(TRAFFIC_EDITS_PER_CLIENT):
                        await aio.submit(
                            "steady-live",
                            touch(live_steady, f"c{client_id}_{i}", i))

                async def flood_one(i):
                    await aio.submit("flood-live",
                                     touch(live_flood, f"f{i}", i))

                async def flood_client():
                    # all at once: the tiny reject-policy queue must shed
                    nonlocal live_rejected
                    outcomes = await asyncio.gather(
                        *(flood_one(i) for i in range(TRAFFIC_LIVE_FLOOD)),
                        return_exceptions=True)
                    live_rejected = sum(
                        1 for o in outcomes if isinstance(o, AdmissionError))

                async def main():
                    await asyncio.gather(
                        *(steady_client(c) for c in range(TRAFFIC_CLIENTS)),
                        flood_client())
                    await aio.quiesce(timeout=60.0)

                started = time.perf_counter()
                asyncio.run(main())
                elapsed = time.perf_counter() - started
        latency = registry.get("repro_ingest_commit_to_repaired_seconds")
        total_edits = TRAFFIC_CLIENTS * TRAFFIC_EDITS_PER_CLIENT
        results.update({
            "traffic_live_seconds": round(elapsed, 4),
            "traffic_edits_per_second": round(total_edits / elapsed, 1),
            "traffic_live_rejections": live_rejected,
            "traffic_p50_seconds": round(
                latency.quantile(0.50, tenant="steady-live"), 4),
            "traffic_p99_seconds": round(
                latency.quantile(0.99, tenant="steady-live"), 4),
        })
    return results


#: chaos-kg: workers for the supervised inline pools (simulated deaths keep
#: the scenario deterministic and fast; the real-SIGKILL path is covered by
#: the tests/test_chaos.py spawn smoke in CI)
CHAOS_WORKERS = 2


def measure_chaos(workload) -> dict[str, Any]:
    """The ``chaos-kg`` scenario: scripted faults through the supervised pool.

    Two phases over the kg workload, both deterministic (inline pools,
    simulated worker death — see :mod:`repro.testing.faults`):

    * **crash-heal** — a scripted worker crash on the first shard-repair
      command: supervision must respawn the worker, rebind its replica, and
      retry the repair, landing on a graph element-for-element equal to the
      sequential backend's (``chaos_crash_equal``).  The respawn/retry
      counters are **hard gates**: the same script must cost the same
      recovery work on every run;
    * **fallback** — persistent scripted repair errors defeat the one-retry
      heal; the pool failure trips a threshold-1 circuit breaker and the
      repairer degrades to the sequential drain, once for the failure and
      once more for the open breaker (``chaos_fallback_repairs`` — a hard
      gate, as is the drain's equivalence, ``chaos_fallback_equal``).
    """
    from repro.api import RepairSession
    from repro.parallel.breaker import CircuitBreaker
    from repro.parallel.pool import WorkerPool
    from repro.testing import Fault, FaultPlan

    def warm_config():
        return RepairConfig.sharded(workers=CHAOS_WORKERS, warm=True,
                                    parallel_inline=True,
                                    min_partition_nodes=1)

    # ground truth for both phases: the sequential backend over the same
    # deterministic drive
    crash_reference = workload.dirty.copy(name="chaos-crash-ref")
    with RepairSession(crash_reference, workload.rules,
                       config=RepairConfig.fast()) as session:
        session.repair()
    fallback_reference = workload.dirty.copy(name="chaos-fallback-ref")
    with RepairSession(fallback_reference, workload.rules,
                       config=RepairConfig.fast()) as session:
        session.repair()
        session.apply(lambda g: _service_corrupt(g, 0))
        session.repair()

    # -- phase 1: crash mid-repair, transparent heal --------------------
    plan = FaultPlan(faults=(
        Fault(site="worker.command", kind="crash", command="repair"),))
    crash_graph = workload.dirty.copy(name="chaos-crash")
    started = time.perf_counter()
    with WorkerPool(CHAOS_WORKERS, inline=True, fault_plan=plan) as pool:
        with RepairSession(crash_graph, workload.rules, config=warm_config(),
                           pool=pool) as session:
            crash_report = session.repair()
            crash_stats = pool.stats.as_dict()
            crash_fell_back = session.backend.last_fanout.fallback
    crash_seconds = time.perf_counter() - started

    # -- phase 2: unhealable errors → breaker-guarded fallback ----------
    plan = FaultPlan(faults=tuple(
        Fault(site="worker.command", kind="error", command="repair")
        for _ in range(2)))
    breaker = CircuitBreaker(failure_threshold=1, reset_seconds=3600.0)
    fallback_graph = workload.dirty.copy(name="chaos-fallback")
    with WorkerPool(CHAOS_WORKERS, inline=True, fault_plan=plan,
                    breaker=breaker) as pool:
        with RepairSession(fallback_graph, workload.rules,
                           config=warm_config(), pool=pool) as session:
            session.repair()                     # errors defeat the retry
            session.apply(lambda g: _service_corrupt(g, 0))
            session.repair()                     # breaker open: drain again
            fallback_stats = pool.stats.as_dict()
            breaker_state = breaker.state

    return {
        "chaos_workers": CHAOS_WORKERS,
        "chaos_crash_seconds": round(crash_seconds, 4),
        "chaos_repairs_applied": crash_report.repairs_applied,
        "chaos_worker_deaths": crash_stats["worker_deaths"],
        "chaos_respawns": crash_stats["respawns"],
        "chaos_retries": crash_stats["retries"],
        "chaos_crash_fell_back": crash_fell_back,
        "chaos_crash_equal": crash_graph.structurally_equal(crash_reference),
        "chaos_fallback_repairs": fallback_stats["fallback_repairs"],
        "chaos_breaker_state": breaker_state,
        "chaos_fallback_equal":
            fallback_graph.structurally_equal(fallback_reference),
    }


def measure_scale(mode: str, error_rate: float, seed: int) -> dict[str, Any]:
    """The ``scale-kg`` scenario: the hot path at 10–20× the regular grid.

    Measured once per invocation (the runs are seconds long; repeat noise is
    small relative to the signal), untraced for wall-clock, then a second
    repair-a-copy run under ``tracemalloc`` for the peak-memory trajectory
    (graph copy + candidate index + match stores + queue — the whole
    session footprint).
    """
    import tracemalloc

    scale = SCALE_TIERS[mode]
    workload = build_workload(SHARDED_DOMAIN, scale=scale,
                              error_rate=error_rate, seed=seed)

    matcher = Matcher(workload.dirty, MatcherConfig.optimized(),
                      maintain_index=False)
    started = time.perf_counter()
    matches = sum(len(matcher.find_matches(rule.pattern))
                  for rule in workload.rules)
    match_seconds = time.perf_counter() - started
    matcher.close()

    started = time.perf_counter()
    _, report = repair_copy(workload.dirty, workload.rules,
                            config=RepairConfig.fast())
    fast_seconds = time.perf_counter() - started

    tracemalloc.start()
    repair_copy(workload.dirty, workload.rules, config=RepairConfig.fast())
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "scale_tier": scale,
        "scale_nodes": workload.dirty.num_nodes,
        "scale_edges": workload.dirty.num_edges,
        "scale_match_seconds": round(match_seconds, 4),
        "scale_fast_seconds": round(fast_seconds, 4),
        "scale_matches": matches,
        "scale_repairs_applied": report.repairs_applied,
        "scale_violations_detected": report.violations_detected,
        "scale_nodes_tried": report.matching_stats.nodes_tried,
        "scale_value_bucket_candidates":
            report.matching_stats.value_bucket_candidates,
        "scale_range_bucket_candidates":
            report.matching_stats.range_bucket_candidates,
        "scale_planner_plans": report.matching_stats.planner_plans,
        "scale_planner_replans": report.matching_stats.planner_replans,
        "scale_reached_fixpoint": report.reached_fixpoint,
        "scale_tracemalloc_peak_mb": round(peak / (1024 * 1024), 2),
    }


def measure(mode: str) -> dict[str, Any]:
    """All domains' measurements for one mode."""
    grid = MODES[mode]
    results: dict[str, Any] = {}
    for domain, scale in grid["scales"].items():
        results[domain] = measure_domain(domain, scale, grid["error_rate"],
                                         grid["seed"], grid["repeats"])
    results[SHARDED_DOMAIN].update(
        measure_scale(mode, grid["error_rate"], grid["seed"]))
    return results


def load_trajectory(path: Path) -> dict[str, Any]:
    if path.exists():
        with path.open(encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("schema") != SCHEMA_VERSION:
            raise SystemExit(f"unsupported {path.name} schema: {data.get('schema')!r}")
        return data
    return {"schema": SCHEMA_VERSION, "entries": []}


def latest_entry(trajectory: dict[str, Any], mode: str) -> dict[str, Any] | None:
    for entry in reversed(trajectory.get("entries", [])):
        if entry.get("mode") == mode:
            return entry
    return None


def append_entry(path: Path, mode: str, label: str,
                 results: dict[str, Any]) -> dict[str, Any]:
    trajectory = load_trajectory(path)
    entry = {
        "label": label,
        "mode": mode,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        **host_fingerprint(),
        "results": results,
    }
    trajectory["entries"].append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return entry


def format_results(results: dict[str, Any]) -> str:
    lines = [f"{'domain':<8} {'scale':>6} {'match_s':>9} {'fast_s':>9} {'naive_s':>9} "
             f"{'batch_s':>9} {'matches':>8} {'repairs':>8} {'passes':>11}"]
    for domain, row in results.items():
        passes = (f"{row['batched_maintenance_passes']}/"
                  f"{row['fast_maintenance_passes']}")
        lines.append(f"{domain:<8} {row['scale']:>6} {row['match_seconds']:>9.4f} "
                     f"{row['fast_seconds']:>9.4f} {row['naive_seconds']:>9.4f} "
                     f"{row['batched_seconds']:>9.4f} "
                     f"{row['matches']:>8} {row['fast_repairs_applied']:>8} "
                     f"{passes:>11}")
        if "sharded_seconds" in row:
            lines.append(
                f"{'':8} sharded-{domain}@{row['scale']}: "
                f"{row['sharded_seconds']:.4f}s @ {row['sharded_workers']} workers "
                f"({row['sharded_shards']} shards, "
                f"{row['sharded_accepted']} merged + {row['sharded_rejected']} deferred, "
                f"vs batched {row['batched_seconds']:.4f}s)")
        if "service_warm_call_seconds" in row:
            lines.append(
                f"{'':8} service-{domain}@{row['scale']}: warm "
                f"{row['service_warm_call_seconds']:.4f}s/call vs cold "
                f"{row['service_cold_call_seconds']:.4f}s/call after warm-up "
                f"({row['service_warm_first_seconds']:.4f}s; "
                f"{row['service_warm_spawns_total']} spawns total, "
                f"{row['service_warm_spawns_after_warmup']} after warm-up, "
                f"{row['service_warm_binds']} binds, "
                f"{row['service_warm_ships']} ships; warm p50/p95/p99 "
                f"{row['service_warm_p50_seconds']:.4f}/"
                f"{row['service_warm_p95_seconds']:.4f}/"
                f"{row['service_warm_p99_seconds']:.4f}s; ownership "
                f"{row['service_ownership_coverage']:.3f} coverage / "
                f"{row['service_shard_balance']:.3f} balance)")
        if "traffic_scheduler_ticks" in row:
            lines.append(
                f"{'':8} traffic-{domain}@{row['scale']}: "
                f"{row['traffic_scheduler_ticks']} ticks, "
                f"{row['traffic_admission_rejections']} rejected, "
                f"{row['traffic_coalesced_deltas']} coalesced / "
                f"{row['traffic_committed']} committed "
                f"({row['traffic_repairs']} repairs); live "
                f"{row['traffic_edits_per_second']:.1f} edits/s over "
                f"{row['traffic_live_seconds']:.4f}s, "
                f"{row['traffic_live_rejections']} flood rejections, "
                f"commit→repaired p50/p99 "
                f"{row['traffic_p50_seconds']:.4f}/"
                f"{row['traffic_p99_seconds']:.4f}s")
        if "chaos_respawns" in row:
            lines.append(
                f"{'':8} chaos-{domain}@{row['scale']}: crash healed in "
                f"{row['chaos_crash_seconds']:.4f}s "
                f"({row['chaos_worker_deaths']} deaths, "
                f"{row['chaos_respawns']} respawns, "
                f"{row['chaos_retries']} retries, "
                f"equal={row['chaos_crash_equal']}); "
                f"{row['chaos_fallback_repairs']} fallbacks, breaker "
                f"{row['chaos_breaker_state']}, "
                f"equal={row['chaos_fallback_equal']}")
        if "recovery_seconds" in row:
            lines.append(
                f"{'':8} recovery-{domain}@{row['scale']}: restore "
                f"{row['recovery_seconds']:.4f}s from snapshot@"
                f"{row['recovery_snapshot_sequence']} + "
                f"{row['recovery_records_replayed']} replayed records "
                f"({row['recovery_changes_replayed']} changes, "
                f"{row['recovery_snapshots_written']} snapshots, "
                f"committed seq {row['recovery_sequence']}, "
                f"durable serve {row['recovery_serve_seconds']:.4f}s, "
                f"replay p50/p99 {row['recovery_replay_p50_seconds']:.6f}/"
                f"{row['recovery_replay_p99_seconds']:.6f}s, "
                f"exact={row['recovery_exact']})")
        if "scale_tier" in row:
            lines.append(
                f"{'':8} scale-{domain}@{row['scale_tier']}: "
                f"{row['scale_nodes']} nodes / {row['scale_edges']} edges, "
                f"match {row['scale_match_seconds']:.4f}s, fast "
                f"{row['scale_fast_seconds']:.4f}s "
                f"({row['scale_repairs_applied']} repairs, "
                f"{row['scale_nodes_tried']} nodes tried, "
                f"{row['scale_value_bucket_candidates']} via value buckets, "
                f"{row['scale_planner_plans']} plans / "
                f"{row['scale_planner_replans']} replans, "
                f"peak {row['scale_tracemalloc_peak_mb']:.1f} MiB)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=sorted(MODES), default="quick")
    parser.add_argument("--label", default="manual run",
                        help="free-form description stored with the entry")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print, do not write the trajectory")
    args = parser.parse_args(argv)

    results = measure(args.mode)
    print(format_results(results))
    if args.dry_run:
        return 0
    append_entry(args.output, args.mode, args.label, results)
    print(f"\n[appended {args.mode!r} entry to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
