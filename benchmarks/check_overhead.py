#!/usr/bin/env python
"""Telemetry-overhead gate: observing must never change or dominate repair.

Two contracts, checked on the kg fast-repair hot path (kg@800 by default —
the full-mode grid point):

* **disabled telemetry is free and inert** — with telemetry off (the
  default), the repair's deterministic work counters are bit-identical to
  the recorded full-mode baseline in ``BENCH_repair.json`` (instrumentation
  only observes, it never steers), and wall time stays within
  ``--baseline-threshold``× of the baseline's ``fast_seconds`` (checked
  only on the host that recorded the baseline — wall clocks do not travel);
* **enabled telemetry is cheap and exact** — with telemetry collecting,
  the same repair produces the *same* work counters, the telemetry counters
  equal the :class:`~repro.repair.report.RepairReport` exactly, and the
  best-of-N wall time exceeds the disabled run by at most
  ``--overhead-threshold`` (default 5%).

Disabled/enabled rounds are interleaved and both sides take the best-of-N
minimum, so scheduler noise hits both measurements symmetrically.

Usage::

    PYTHONPATH=src python benchmarks/check_overhead.py
    PYTHONPATH=src python benchmarks/check_overhead.py --scale 200 --repeats 5

Exit status 0 when every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import telemetry
from repro.api import RepairConfig, repair_copy
from repro.datasets.registry import build_workload

from perf_baseline import (
    DEFAULT_OUTPUT,
    host_fingerprint,
    latest_entry,
    load_trajectory,
)

#: (report counter attribute, telemetry counter it must equal)
COUNTER_PAIRS = (
    ("repairs_applied", "repro_repairs_applied_total"),
    ("violations_detected", "repro_violations_detected_total"),
    ("repairs_failed", "repro_repairs_failed_total"),
)

#: deterministic work counters compared disabled-vs-enabled-vs-baseline
WORK_COUNTERS = ("repairs_applied", "violations_detected", "nodes_tried",
                 "maintenance_passes")


def _work_counters(report) -> dict[str, int]:
    return {"repairs_applied": report.repairs_applied,
            "violations_detected": report.violations_detected,
            "nodes_tried": report.matching_stats.nodes_tried,
            "maintenance_passes": report.matching_stats.maintenance_passes}


def measure(workload, repeats: int):
    """Interleaved best-of-``repeats`` disabled and enabled runs."""
    disabled_best = enabled_best = float("inf")
    disabled_report = enabled_report = None
    registry = None
    for _ in range(repeats):
        assert not telemetry.TELEMETRY.enabled
        started = time.perf_counter()
        _, disabled_report = repair_copy(workload.dirty, workload.rules,
                                         config=RepairConfig.fast())
        disabled_best = min(disabled_best, time.perf_counter() - started)

        with telemetry.collecting() as (run_registry, _tracer):
            started = time.perf_counter()
            _, enabled_report = repair_copy(workload.dirty, workload.rules,
                                            config=RepairConfig.fast())
            elapsed = time.perf_counter() - started
        if elapsed < enabled_best:
            enabled_best = elapsed
            registry = run_registry
    return disabled_best, disabled_report, enabled_best, enabled_report, \
        registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=800,
                        help="kg workload scale (800 = the full-mode grid)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--overhead-threshold", type=float, default=0.05,
                        help="max fractional slowdown with telemetry enabled")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--baseline-mode", default="full",
                        help="trajectory mode whose kg entry to compare")
    parser.add_argument("--baseline-threshold", type=float, default=3.0,
                        help="max disabled wall time as a multiple of the "
                             "baseline fast_seconds (same host only; 3.0 "
                             "matches check_regression's smoke threshold)")
    args = parser.parse_args(argv)

    workload = build_workload("kg", scale=args.scale, error_rate=0.05, seed=0)
    print(f"kg@{args.scale}: {workload.dirty.num_nodes} nodes / "
          f"{workload.dirty.num_edges} edges, best of {args.repeats}")

    disabled_s, disabled_report, enabled_s, enabled_report, registry = \
        measure(workload, args.repeats)
    overhead = enabled_s / disabled_s - 1.0 if disabled_s else 0.0
    print(f"disabled {disabled_s:.4f}s | enabled {enabled_s:.4f}s "
          f"(overhead {overhead:+.1%}, limit "
          f"{args.overhead_threshold:+.1%})")

    failures: list[str] = []

    # 1. observing must not change the outcome
    disabled_work = _work_counters(disabled_report)
    enabled_work = _work_counters(enabled_report)
    if disabled_work != enabled_work:
        failures.append("enabling telemetry changed the work counters: "
                        f"disabled={disabled_work} enabled={enabled_work}")

    # 2. the telemetry counters must equal the report exactly
    telemetry_snapshot = registry.snapshot()
    for report_key, metric_name in COUNTER_PAIRS:
        family = telemetry_snapshot.get(metric_name)
        observed = family.total() if family else 0.0
        expected = float(getattr(enabled_report, report_key))
        if observed != expected:
            failures.append(f"{metric_name} = {observed} but the report's "
                            f"{report_key} = {expected}")

    # 3. enabled overhead stays under the threshold
    if overhead > args.overhead_threshold:
        failures.append(f"telemetry overhead {overhead:+.1%} exceeds "
                        f"{args.overhead_threshold:+.1%}")

    # 4. disabled run vs the recorded baseline (counters everywhere,
    #    wall clock only on the recording host)
    try:
        trajectory = load_trajectory(args.baseline)
    except SystemExit as exc:
        print(f"[baseline skipped: {exc}]")
        trajectory = {"entries": []}
    entry = latest_entry(trajectory, args.baseline_mode)
    if entry is None:
        print(f"[no {args.baseline_mode!r} baseline entry — "
              "baseline gates skipped]")
    else:
        base = entry["results"].get("kg", {})
        if base.get("scale") != args.scale:
            print(f"[baseline kg scale {base.get('scale')} != {args.scale} — "
                  "baseline gates skipped]")
        else:
            for key, baseline_key in (("repairs_applied",
                                       "fast_repairs_applied"),
                                      ("violations_detected",
                                       "fast_violations_detected"),
                                      ("nodes_tried", "fast_nodes_tried"),
                                      ("maintenance_passes",
                                       "fast_maintenance_passes")):
                if baseline_key in base \
                        and disabled_work[key] != base[baseline_key]:
                    failures.append(
                        f"disabled {key} = {disabled_work[key]} but the "
                        f"baseline recorded {base[baseline_key]}")
            same_host = all(entry.get(key) == value for key, value
                            in host_fingerprint().items())
            if same_host and "fast_seconds" in base:
                limit = base["fast_seconds"] * args.baseline_threshold
                if disabled_s > limit:
                    failures.append(
                        f"disabled wall {disabled_s:.4f}s exceeds "
                        f"{args.baseline_threshold}x the baseline "
                        f"{base['fast_seconds']:.4f}s")
            elif not same_host:
                print("[different host than the baseline — wall-clock gate "
                      "skipped, counters still checked]")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: telemetry is free when disabled, exact and cheap when enabled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
