"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the (reconstructed)
evaluation — see DESIGN.md §4 and EXPERIMENTS.md.  Each benchmark

* runs its experiment exactly once inside ``benchmark.pedantic`` (the
  experiments are minutes-scale end-to-end pipelines; statistical repetition
  is neither needed nor affordable),
* prints the paper-style result table, and
* saves it under ``benchmarks/results/`` so EXPERIMENTS.md can reference the
  exact measured numbers.

Set ``REPRO_BENCH_QUICK=1`` to run every benchmark on reduced parameter grids
(seconds instead of minutes).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = Path(__file__).parent / "BENCH_repair.json"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def perf_baseline() -> dict:
    """The most recent quick-mode entry of the committed perf trajectory
    (``BENCH_repair.json``), for the tier-2 regression gate in
    ``bench_micro_matching.py``.  Skips when no baseline has been recorded."""
    if not BASELINE_PATH.exists():
        pytest.skip(f"no perf baseline at {BASELINE_PATH}; "
                    f"record one with perf_baseline.py")
    with BASELINE_PATH.open(encoding="utf-8") as handle:
        trajectory = json.load(handle)
    for entry in reversed(trajectory.get("entries", [])):
        if entry.get("mode") == "quick":
            return entry
    pytest.skip("perf trajectory has no quick-mode entry")


@pytest.fixture
def save_table(results_dir):
    """Persist a rendered result table and echo it to stdout."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
