"""E6 — rule-set static analysis: verdicts and checking cost (table).

Generates rule sets of growing size, with and without a planted inconsistent
pair (an incompleteness rule and a conflict rule that add and delete the same
fresh edge label), and measures the polynomial sufficient-condition check
versus the exponential bounded-chase exact check.  Expected shape: the
sufficient check is milliseconds at every size and always flags the planted
pair; the exact check is markedly more expensive and is skipped beyond the
configured size limit.
"""

from __future__ import annotations

import math

from repro.experiments import defaults, run_e6_analysis
from repro.metrics import format_table

COLUMNS = ("num_rules", "planted_inconsistency", "sufficient_verdict",
           "termination_verdict", "sufficient_seconds", "exact_verdict",
           "exact_seconds", "trigger_relations")


def test_e6_rule_set_analysis(run_once, save_table):
    config = defaults()
    rows = run_once(run_e6_analysis, config=config)
    save_table("e6_analysis", format_table(
        rows, columns=list(COLUMNS),
        title="E6 — consistency / termination analysis vs rule-set size "
              f"(exact check up to {config.analysis_exact_limit} rules)"))

    for row in rows:
        assert row["sufficient_seconds"] < 2.0, "sufficient conditions must stay cheap"
        if row["planted_inconsistency"]:
            # the planted oscillating pair is always caught
            assert row["sufficient_verdict"] == "inconsistent"
            if row["exact_verdict"] != "skipped":
                assert row["exact_verdict"] == "inconsistent"
    # without planting, at least the smallest generated set is clean, and any
    # syntactic alarm the sufficient conditions raise on larger sets is either
    # confirmed or refuted by the exact check (never left as "unknown")
    unplanted = [row for row in rows if not row["planted_inconsistency"]]
    smallest = min(unplanted, key=lambda row: row["num_rules"])
    assert smallest["sufficient_verdict"] in ("consistent", "unknown") or \
        smallest["exact_verdict"] == "consistent"
    for row in unplanted:
        if row["exact_verdict"] != "skipped":
            assert row["exact_verdict"] in ("consistent", "inconsistent")
    # exact checking costs clearly more than the sufficient conditions when run
    exact_rows = [row for row in rows if not math.isnan(row["exact_seconds"])]
    if exact_rows:
        assert max(row["exact_seconds"] for row in exact_rows) >= \
            max(row["sufficient_seconds"] for row in rows)
