"""E3 — repair runtime versus number of rules (figure).

Reconstructs the scalability-in-|R| figure: rule sets of growing size are
generated from the data graph's schema (functional-conflict, duplicate-edge,
and path-incompleteness rules) and both repair algorithms run on the same
corrupted graph.  Expected shape: naive runtime grows roughly linearly with
the number of rules (every rule is fully re-matched every round); the fast
algorithm grows more slowly because the shared candidate index and the
affected-area re-matching amortise the per-rule cost.
"""

from __future__ import annotations

from repro.experiments import defaults, run_e3_rule_count
from repro.metrics import format_table

COLUMNS = ("num_rules", "method", "seconds", "repairs_applied",
           "violations_detected", "matches_enumerated")


def test_e3_runtime_vs_rule_count(run_once, save_table):
    config = defaults()
    rows = run_once(run_e3_rule_count, config=config)
    save_table("e3_rule_count", format_table(
        rows, columns=list(COLUMNS),
        title=f"E3 — repair runtime vs number of generated rules "
              f"(domain={config.rules_domain}, scale={config.rules_scale})"))

    fast = {row["num_rules"]: row["seconds"] for row in rows if row["method"] == "grr-fast"}
    naive = {row["num_rules"]: row["seconds"] for row in rows if row["method"] == "grr-naive"}
    most, fewest = max(fast), min(fast)
    # more rules cost more for both methods, and fast stays ahead at the top end
    assert naive[most] > naive[fewest]
    assert naive[most] >= fast[most]
