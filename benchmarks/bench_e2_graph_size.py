"""E2 — repair runtime versus graph size (figure).

Reconstructs the scalability-in-|G| figure: total repair time of the naive
algorithm (full re-detection every round, unoptimised matching) versus the
fast algorithm (candidate index + decomposition + incremental maintenance) on
knowledge graphs of growing size with a fixed error rate.  Expected shape:
both grow super-linearly, the fast algorithm wins by a factor that widens
with graph size.
"""

from __future__ import annotations

from repro.experiments import defaults, run_e2_graph_size
from repro.metrics import format_table

COLUMNS = ("scale", "nodes", "edges", "method", "seconds",
           "repairs_applied", "violations_detected")


def test_e2_runtime_vs_graph_size(run_once, save_table):
    config = defaults()
    rows = run_once(run_e2_graph_size, config=config)
    save_table("e2_graph_size", format_table(
        rows, columns=list(COLUMNS),
        title=f"E2 — repair runtime vs graph size (domain={config.size_domain}, "
              f"error rate={config.size_error_rate})"))

    fast = {row["scale"]: row["seconds"] for row in rows if row["method"] == "grr-fast"}
    naive = {row["scale"]: row["seconds"] for row in rows if row["method"] == "grr-naive"}
    largest = max(fast)
    smallest = min(fast)
    # runtime grows with scale for both methods
    assert fast[largest] > fast[smallest]
    assert naive[largest] > naive[smallest]
    # the fast algorithm wins at the largest size
    assert naive[largest] > fast[largest]
