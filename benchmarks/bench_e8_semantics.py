"""E8 — per-semantics repair breakdown (table).

For every domain, breaks the evaluation down by error class: how many errors
were injected, how many violations the rules detected on the dirty graph, how
many repairs of that class were applied, how many violations remain after
repair, and the per-class recall.  Expected shape: all three classes are
detected and repaired, no violations remain, and per-class recall is high
(redundancy recall is the hardest because duplicate entities drag extra facts
along).
"""

from __future__ import annotations

from repro.experiments import defaults, run_e8_semantics
from repro.metrics import format_table

COLUMNS = ("domain", "semantics", "injected_errors", "violations_detected",
           "repairs_applied", "violations_remaining", "recall")


def test_e8_per_semantics_breakdown(run_once, save_table):
    config = defaults()
    rows = run_once(run_e8_semantics, config=config)
    save_table("e8_semantics", format_table(
        rows, columns=list(COLUMNS),
        title=f"E8 — per-error-class breakdown (scale={config.quality_scale}, "
              f"error rate={config.quality_error_rate})"))

    for row in rows:
        assert row["violations_remaining"] == 0, \
            f"{row['domain']}/{row['semantics']}: violations left after repair"
        if row["injected_errors"] > 0:
            assert row["violations_detected"] > 0
            assert row["repairs_applied"] > 0
            assert row["recall"] > 0.7
