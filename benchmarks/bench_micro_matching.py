"""Micro-benchmarks of the matching/repair hot path (table + regression gate).

Complements the paper-level experiments (E1–E8) with targeted timings of the
four layers the hot-path overhaul touches:

* full pattern enumeration with the optimised matcher (index + decomposition),
* incremental match maintenance (``apply_delta``) over a scripted batch of
  repair-like mutations,
* both repair algorithms end to end, and
* the candidate index's value buckets: a ``(label, key, value)`` bucket probe
  against the equivalent full label-bucket property scan (the predicate-
  pushdown win in isolation),

on all three dataset generators.  Results are printed as a table and saved to
``benchmarks/results/``.

``test_perf_regression_gate`` is the tier-2 perf gate: it re-measures the
quick profile and compares against the committed ``BENCH_repair.json``
baseline (see ``check_regression.py``).  It only runs when
``REPRO_BENCH_CHECK=1`` is set, so ordinary benchmark invocations stay fast.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.datasets.registry import build_workload
from repro.graph import ChangeRecorder
from repro.matching import CandidateIndex, IncrementalMatcher, Matcher, MatcherConfig
from repro.metrics import format_table
from repro.api import RepairConfig, repair_copy

DOMAINS = ("kg", "movies", "social")
SCALES = {"kg": 200, "movies": 150, "social": 150}

COLUMNS = ("domain", "scale", "match_seconds", "incremental_seconds",
           "seeded_searches", "fast_seconds", "naive_seconds",
           "matches", "fast_repairs")


def _measure_incremental(workload) -> tuple[float, int]:
    """Time apply_delta over a scripted batch of repair-like mutations."""
    graph = workload.dirty.copy()
    index = CandidateIndex(graph)
    index.attach()
    incremental = IncrementalMatcher(graph, candidate_index=index)
    for rule in workload.rules:
        incremental.register(rule.pattern)
    recorder = ChangeRecorder()
    graph.add_listener(recorder)

    # a deterministic mutation batch covering the three discovery paths:
    # remove every 7th edge (invalidation), duplicate every 11th (edge-seeded
    # discovery), and touch every 13th node's properties (node-seeded
    # discovery)
    edges = graph.edge_ids()
    for position, edge_id in enumerate(edges):
        if position % 7 == 0:
            graph.remove_edge(edge_id)
        elif position % 11 == 0:
            edge = graph.edge(edge_id)
            graph.add_edge(edge.source, edge.target, edge.label)
    for position, node_id in enumerate(graph.node_ids()):
        if position % 13 == 0:
            graph.update_node(node_id, {"touched": True})

    seeded = 0
    started = time.perf_counter()
    updates = incremental.apply_delta(recorder.drain())
    elapsed = time.perf_counter() - started
    for update in updates.values():
        seeded += update.seeded_searches
    return elapsed, seeded


def _measure_domain(domain: str) -> dict:
    scale = SCALES[domain]
    workload = build_workload(domain, scale=scale, error_rate=0.05, seed=0)

    matcher = Matcher(workload.dirty, MatcherConfig.optimized(), maintain_index=False)
    started = time.perf_counter()
    matches = sum(len(matcher.find_matches(rule.pattern)) for rule in workload.rules)
    match_seconds = time.perf_counter() - started
    matcher.close()

    incremental_seconds, seeded = _measure_incremental(workload)

    started = time.perf_counter()
    _, fast_report = repair_copy(workload.dirty, workload.rules,
                                 config=RepairConfig.fast())
    fast_seconds = time.perf_counter() - started

    started = time.perf_counter()
    repair_copy(workload.dirty, workload.rules, config=RepairConfig.naive())
    naive_seconds = time.perf_counter() - started

    return {
        "domain": domain,
        "scale": scale,
        "match_seconds": match_seconds,
        "incremental_seconds": incremental_seconds,
        "seeded_searches": seeded,
        "fast_seconds": fast_seconds,
        "naive_seconds": naive_seconds,
        "matches": matches,
        "fast_repairs": fast_report.repairs_applied,
    }


def test_micro_matching_hot_path(run_once, save_table):
    rows = run_once(lambda: [_measure_domain(domain) for domain in DOMAINS])
    save_table("micro_matching", format_table(
        rows, columns=list(COLUMNS),
        title="Micro — matcher / incremental-maintenance / repair hot path"))
    # the fast algorithm must beat full re-detection; aggregate across the
    # domains so a single scheduler stall on one sub-second measurement
    # cannot flip the comparison (the strict 25%-threshold gate is the
    # opt-in test_perf_regression_gate below)
    total_fast = sum(row["fast_seconds"] for row in rows)
    total_naive = sum(row["naive_seconds"] for row in rows)
    assert total_fast < total_naive
    for row in rows:
        assert row["matches"] > 0


# the property each domain's dedup rule compares for equality — the key the
# predicate pushdown turns into value-bucket probes
_VALUE_PROBE = {"kg": ("Person", "name"),
                "movies": ("Movie", "title"),
                "social": ("User", "email")}

INDEX_COLUMNS = ("domain", "label_size", "probes", "bucket_seconds",
                 "scan_seconds", "speedup")


def _measure_value_probe(domain: str) -> dict:
    """Probe the value bucket for every distinct dedup-key value vs answering
    the same equality question by scanning the label bucket."""
    workload = build_workload(domain, scale=SCALES[domain], error_rate=0.05,
                              seed=0)
    graph = workload.dirty
    index = CandidateIndex(graph)
    label, key = _VALUE_PROBE[domain]
    index.ensure_value_index(label, key)
    values = sorted({node.properties[key]
                     for node in graph.nodes_with_label(label)
                     if key in node.properties})

    started = time.perf_counter()
    bucket_hits = 0
    for value in values:
        bucket_hits += len(index.value_bucket(label, key, value))
    bucket_seconds = time.perf_counter() - started

    node = graph.node
    started = time.perf_counter()
    scan_hits = 0
    for value in values:
        scan_hits += sum(1 for node_id in index.label_bucket(label)
                         if node(node_id).properties.get(key) == value)
    scan_seconds = time.perf_counter() - started
    assert bucket_hits == scan_hits  # the bucket answers the same question

    return {
        "domain": domain,
        "label_size": len(index.label_bucket(label)),
        "probes": len(values),
        "bucket_seconds": bucket_seconds,
        "scan_seconds": scan_seconds,
        "speedup": scan_seconds / bucket_seconds if bucket_seconds else float("inf"),
    }


def test_micro_candidate_index(run_once, save_table):
    rows = run_once(lambda: [_measure_value_probe(domain) for domain in DOMAINS])
    save_table("micro_candidate_index", format_table(
        rows, columns=list(INDEX_COLUMNS),
        title="Micro — value-bucket probe vs full label-bucket scan"))
    for row in rows:
        # a bucket probe must beat scanning the label bucket per probe —
        # by orders of magnitude in practice; assert a conservative margin
        assert row["bucket_seconds"] < row["scan_seconds"]


RANGE_COLUMNS = ("domain", "label_size", "probes", "range_seconds",
                 "scan_seconds", "speedup")


def _measure_range_probe(domain: str) -> dict:
    """Probe the sorted buckets for ``ge`` cut points vs answering the same
    range question by scanning the label bucket (the range-pushdown win in
    isolation)."""
    workload = build_workload(domain, scale=SCALES[domain], error_rate=0.05,
                              seed=0)
    graph = workload.dirty
    index = CandidateIndex(graph)
    label, key = _VALUE_PROBE[domain]
    index.ensure_sorted_index(label, key)
    values = sorted({node.properties[key]
                     for node in graph.nodes_with_label(label)
                     if key in node.properties
                     and isinstance(node.properties[key], str)})
    # every 5th distinct value as a cut point keeps the probe count bounded
    cuts = values[::5] or values

    started = time.perf_counter()
    range_hits = 0
    for cut in cuts:
        range_hits += len(index.range_bucket(label, key, "ge", cut))
    range_seconds = time.perf_counter() - started

    node = graph.node

    def _ge(value, cut):
        try:
            return value >= cut
        except TypeError:
            return False

    started = time.perf_counter()
    scan_hits = 0
    for cut in cuts:
        scan_hits += sum(1 for node_id in index.label_bucket(label)
                         if key in node(node_id).properties
                         and _ge(node(node_id).properties[key], cut))
    scan_seconds = time.perf_counter() - started
    # the probe is complete-not-exact: it may include the fuzzy/unhashable
    # side pools, never miss a true hit
    assert range_hits >= scan_hits

    return {
        "domain": domain,
        "label_size": len(index.label_bucket(label)),
        "probes": len(cuts),
        "range_seconds": range_seconds,
        "scan_seconds": scan_seconds,
        "speedup": scan_seconds / range_seconds if range_seconds else float("inf"),
    }


def test_micro_range_probe(run_once, save_table):
    rows = run_once(lambda: [_measure_range_probe(domain) for domain in DOMAINS])
    save_table("micro_range_probe", format_table(
        rows, columns=list(RANGE_COLUMNS),
        title="Micro — sorted-bucket range probe vs full label-bucket scan"))
    for row in rows:
        assert row["range_seconds"] < row["scan_seconds"]


PLANNER_COLUMNS = ("domain", "scale", "planned_nodes", "static_nodes",
                   "planned_seconds", "static_seconds", "plans", "matches")


def _measure_planner(domain: str) -> dict:
    """Full-rule-set enumeration under the cost planner vs the static
    declaration order, with match-identity asserted."""
    scale = SCALES[domain]
    workload = build_workload(domain, scale=scale, error_rate=0.05, seed=0)
    graph = workload.dirty
    results = {}
    for flag in (True, False):
        matcher = Matcher(
            graph, replace(MatcherConfig.optimized(), use_cost_planner=flag),
            maintain_index=False)
        started = time.perf_counter()
        keys = set()
        for rule in workload.rules:
            keys |= {match.key() for match in matcher.find_matches(rule.pattern)}
        elapsed = time.perf_counter() - started
        results[flag] = (keys, elapsed, matcher.stats)
        matcher.close()
    planned_keys, planned_seconds, planned_stats = results[True]
    static_keys, static_seconds, static_stats = results[False]
    assert planned_keys == static_keys  # perf-only knob: identical matches
    return {
        "domain": domain,
        "scale": scale,
        "planned_nodes": planned_stats.nodes_tried,
        "static_nodes": static_stats.nodes_tried,
        "planned_seconds": planned_seconds,
        "static_seconds": static_seconds,
        "plans": planned_stats.planner_plans,
        "matches": len(planned_keys),
    }


def test_micro_planner(run_once, save_table):
    rows = run_once(lambda: [_measure_planner(domain) for domain in DOMAINS])
    save_table("micro_planner", format_table(
        rows, columns=list(PLANNER_COLUMNS),
        title="Micro — cost-planned variable order vs static declaration order"))
    for row in rows:
        assert row["plans"] > 0
    # aggregate so one noisy sub-second measurement cannot flip the gate
    assert sum(row["planned_nodes"] for row in rows) <= \
        sum(row["static_nodes"] for row in rows)


@pytest.mark.skipif(os.environ.get("REPRO_BENCH_CHECK", "") != "1",
                    reason="perf gate runs only with REPRO_BENCH_CHECK=1")
def test_perf_regression_gate(perf_baseline):
    from check_regression import DEFAULT_THRESHOLD, compare
    from perf_baseline import measure

    current = measure("quick")
    regressions, warnings = compare(perf_baseline["results"], current,
                                    DEFAULT_THRESHOLD)
    for warning in warnings:
        print(f"WARNING: {warning}")
    assert not regressions, "perf regression vs committed baseline:\n" + \
        "\n".join(regressions)
