"""End-to-end knowledge-graph cleaning: the paper's main evaluation pipeline.

Run with::

    python examples/knowledge_graph_cleaning.py [scale] [error_rate]

Steps:

1. generate a clean synthetic knowledge graph (the offline stand-in for
   YAGO/DBpedia — see DESIGN.md);
2. inject incompleteness / conflict / redundancy errors while recording the
   ground truth;
3. statically analyse the rule library (consistency, termination);
4. repair with both the naive and the fast algorithm;
5. score precision / recall / F1 against the ground truth and compare the two
   algorithms and the relational-FD baseline.
"""

from __future__ import annotations

import sys

from repro import RepairConfig, build_workload, repair_quality
from repro.api import repair_copy
from repro.analysis import analyze_termination, check_consistency
from repro.baselines import FDRelationalBaseline
from repro.graph import compute_statistics
from repro.metrics import change_summary, format_table


def main(scale: int = 300, error_rate: float = 0.05) -> None:
    print(f"Building 'kg' workload (scale={scale}, error rate={error_rate}) ...")
    workload = build_workload("kg", scale=scale, error_rate=error_rate, seed=42)

    print("\n== clean graph ==")
    print(compute_statistics(workload.clean))
    print("\n== injected errors ==")
    print(workload.ground_truth.describe())

    print("\n== rule-set analysis ==")
    consistency = check_consistency(workload.rules, exact=True)
    termination = analyze_termination(workload.rules)
    print(consistency.describe())
    print(termination.describe())

    rows = []
    print("\n== repairing ==")
    for method in ("naive", "fast"):
        config = RepairConfig.naive() if method == "naive" else RepairConfig.fast()
        repaired, report = repair_copy(workload.dirty, workload.rules,
                                       config=config)
        quality = repair_quality(workload.clean, workload.dirty, repaired,
                                 workload.ground_truth)
        changes = change_summary(workload.clean, workload.dirty, repaired)
        print(f"\n-- {method} --")
        print(report.describe())
        print(quality.describe())
        rows.append({
            "method": f"grr-{method}",
            "seconds": report.elapsed_seconds,
            "repairs": report.repairs_applied,
            "precision": quality.precision,
            "recall": quality.recall,
            "f1": quality.f1,
            "preservation": changes.preservation_ratio,
        })

    fd_repaired, fd_report = FDRelationalBaseline().repair(workload.dirty, workload.rules)
    fd_quality = repair_quality(workload.clean, workload.dirty, fd_repaired,
                                workload.ground_truth)
    rows.append({
        "method": "fd-relational",
        "seconds": fd_report.elapsed_seconds,
        "repairs": fd_report.changes_applied,
        "precision": fd_quality.precision,
        "recall": fd_quality.recall,
        "f1": fd_quality.f1,
        "preservation": 1.0,
    })

    print("\n== summary ==")
    print(format_table(rows, title="Knowledge-graph cleaning summary"))


if __name__ == "__main__":
    scale_arg = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    rate_arg = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    main(scale_arg, rate_arg)
