"""Static analysis of rule sets: dependencies, consistency, termination, redundancy.

Run with::

    python examples/rule_set_analysis.py

The example analyses the built-in knowledge-graph rule library (whose
nationality rules trip the conservative syntactic checks but are proven
harmless by the bounded chase), then plants a genuinely inconsistent rule pair
and shows that both analysis layers catch it, runs the redundancy analysis
after deliberately duplicating one rule, and finally shows the same gate
wired into a :class:`repro.RepairSession` (``require_consistency=True``
refuses to open a session over an inconsistent rule set).
"""

from __future__ import annotations

from repro import RepairConfig, RepairSession
from repro.analysis import (
    analyze_redundancy,
    analyze_termination,
    build_dependency_graph,
    check_consistency,
)
from repro.datasets import RuleGenConfig, generate_rules, load_dataset
from repro.exceptions import InconsistentRuleSetError
from repro.rules import RuleSet, knowledge_graph_rules


def analyse(rules, exact: bool = True) -> None:
    print(f"\n##### {rules.name} ({len(rules)} rules) #####")
    dependency = build_dependency_graph(rules)
    print(dependency.describe())
    print()
    print(analyze_termination(rules, dependency).describe())
    print()
    print("Sufficient conditions:")
    print(check_consistency(rules, dependency_graph=dependency).describe())
    if exact:
        print("Bounded-chase (exact) check:")
        print(check_consistency(rules, exact=True, dependency_graph=dependency).describe())


def main() -> None:
    # 1. the hand-written KG library: syntactic false alarm, refuted by the chase
    kg = knowledge_graph_rules()
    analyse(kg)

    # 2. a generated rule set with a planted oscillating pair
    dataset = load_dataset("kg", scale=120, seed=3)
    planted = generate_rules(dataset.clean,
                             RuleGenConfig(num_rules=6, plant_inconsistent_pair=True,
                                           seed=3),
                             name="generated-with-planted-inconsistency")
    analyse(planted)

    # 3. redundancy analysis: duplicate one rule and watch it get flagged
    rules = list(kg.rules())
    clone = knowledge_graph_rules().get("kg-dedup-lives-in")
    duplicated = RuleSet(rules, name="kg-rules-with-clone")
    # re-register the same logic under a new name via the builder API
    from repro.rules import redundancy_rule

    duplicated.add(redundancy_rule("kg-dedup-lives-in-clone")
                   .node("p", "Person").node("c", "City")
                   .edge("p", "c", "livesIn", variable="e1")
                   .edge("p", "c", "livesIn", variable="e2")
                   .delete_edge(edge_variable="e2")
                   .described_as("deliberate duplicate of kg-dedup-lives-in")
                   .build())
    print(f"\n##### redundancy analysis on {duplicated.name} #####")
    print(analyze_redundancy(duplicated).describe())
    assert clone is not None  # silence linters about the unused lookup

    # 4. the same gate, enforced at session-open time: a strict session
    #    refuses to repair with a rule set the analysis rejects
    print("\n##### session consistency gate #####")
    try:
        RepairSession(dataset.clean.copy(), planted,
                      config=RepairConfig.fast(require_consistency=True))
    except InconsistentRuleSetError as error:
        print(f"RepairSession refused the planted rule set:\n  {error}")


if __name__ == "__main__":
    main()
