"""Quickstart: define a small dirty graph, a few graph repairing rules, and fix it.

Run with::

    python examples/quickstart.py

The example builds a miniature people/geography knowledge graph containing one
error of each class (a missing nationality, a contradictory birthplace, a
duplicate person, and a duplicated edge), writes three repairing rules — one
per error class — using both the fluent builder and the textual DSL, and
repairs the graph through a :class:`repro.RepairSession`.
"""

from __future__ import annotations

from repro import PropertyGraph, RepairSession, detect_violations, parse_rules
from repro.rules import RuleSet, incompleteness_rule


def build_dirty_graph() -> PropertyGraph:
    """A tiny knowledge graph with one error of each class."""
    graph = PropertyGraph(name="quickstart")

    france = graph.add_node("Country", {"name": "France"})
    uk = graph.add_node("Country", {"name": "UK"})
    paris = graph.add_node("City", {"name": "Paris"})
    london = graph.add_node("City", {"name": "London"})
    graph.add_edge(paris.id, france.id, "inCountry", {"confidence": 1.0})
    graph.add_edge(london.id, uk.id, "inCountry", {"confidence": 1.0})

    # Ada: fine, except she appears twice (redundancy) and has a duplicated edge.
    ada = graph.add_node("Person", {"name": "Ada Lovelace"})
    graph.add_edge(ada.id, london.id, "bornIn", {"confidence": 1.0})
    graph.add_edge(ada.id, uk.id, "nationality", {"confidence": 1.0})
    graph.add_edge(ada.id, london.id, "livesIn", {"confidence": 1.0})
    graph.add_edge(ada.id, london.id, "livesIn", {"confidence": 1.0})   # duplicate edge

    ada_dup = graph.add_node("Person", {"name": "Ada Lovelace"})        # duplicate entity
    graph.add_edge(ada_dup.id, london.id, "bornIn", {"confidence": 1.0})

    # Bob: two birthplaces (conflict), the second from an unreliable source.
    bob = graph.add_node("Person", {"name": "Bob"})
    graph.add_edge(bob.id, paris.id, "bornIn", {"confidence": 1.0})
    graph.add_edge(bob.id, london.id, "bornIn", {"confidence": 0.4})
    graph.add_edge(bob.id, france.id, "nationality", {"confidence": 1.0})

    # Carol: no nationality although her birthplace determines it (incompleteness).
    carol = graph.add_node("Person", {"name": "Carol"})
    graph.add_edge(carol.id, paris.id, "bornIn", {"confidence": 1.0})

    return graph


def build_rules() -> RuleSet:
    """Three rules — one per error class — using the DSL and the builder."""
    dsl_rules = parse_rules("""
RULE single-birthplace CONFLICT PRIORITY 8
  # bornIn is functional; keep the more trusted edge
  MATCH (p:Person)-[e1:bornIn]->(c1:City)
  MATCH (p)-[e2:bornIn]->(c2:City)
  WHERE e1.confidence >= e2.confidence
  REPAIR DELETE_EDGE e2

RULE dedup-person REDUNDANCY PRIORITY 6
  MATCH (a:Person)-[:bornIn]->(c:City)<-[:bornIn]-(b:Person)
  WHERE a.name == b.name
  REPAIR MERGE b INTO a

RULE dedup-lives-in REDUNDANCY PRIORITY 3
  MATCH (p:Person)-[e1:livesIn]->(c:City)
  MATCH (p)-[e2:livesIn]->(c)
  REPAIR DELETE_EDGE e2
""", name="quickstart-dsl")

    add_nationality = (incompleteness_rule("add-nationality")
                       .node("p", "Person").node("c", "City").node("k", "Country")
                       .edge("p", "c", "bornIn").edge("c", "k", "inCountry")
                       .missing_edge("p", "k", "nationality")
                       .add_edge("p", "k", "nationality")
                       .priority(5)
                       .described_as("a person born in a city has that country's nationality")
                       .build())

    rules = RuleSet(dsl_rules.rules(), name="quickstart-rules")
    rules.add(add_nationality)
    return rules


def main() -> None:
    graph = build_dirty_graph()
    rules = build_rules()

    print("== rules ==")
    print(rules.describe())

    print("\n== violations before repair ==")
    detection = detect_violations(graph, rules)
    for violation in detection:
        print(" ", violation.describe())

    repaired = graph.copy(name="quickstart-repaired")
    with RepairSession(repaired, rules) as session:
        report = session.repair()

    print("\n== repair report ==")
    print(report.describe())

    print("\n== applied repairs (provenance) ==")
    print(report.log.describe(limit=None))

    print("\n== violations after repair ==")
    print(f"  {len(detect_violations(repaired, rules))} remaining")

    print("\n== repaired graph ==")
    for node in repaired.nodes():
        print(f"  {node}")
    for edge in repaired.edges():
        print(f"  {edge.source} -[{edge.label}]-> {edge.target}")


if __name__ == "__main__":
    main()
