"""Movie-catalogue curation: extend a canned rule library with a custom DSL rule.

Run with::

    python examples/movie_catalog_repair.py [scale]

The example corrupts the synthetic movie catalogue with a mix of all three
error classes, extends the built-in movie rule library with a custom rule
written in the textual DSL (every movie produced by a studio headquartered in
the catalogue must credit at least its director — a business rule a curator
would add), and shows the per-error-class breakdown of the repair.
"""

from __future__ import annotations

import sys

from repro import parse_rules, repair_quality
from repro.api import repair_copy
from repro.datasets import build_workload
from repro.metrics import format_table
from repro.repair import detect_violations


CUSTOM_RULE = """
RULE sequel-studio-consistency CONFLICT PRIORITY 2
  # a sequel produced by a different studio than the original is suspicious
  # when the original's studio also produced the sequel's other instalments;
  # here we simply flag parallel duplicate sequelOf edges as the repairable case
  MATCH (m1:Movie)-[e1:sequelOf]->(m2:Movie)
  MATCH (m1)-[e2:sequelOf]->(m3:Movie)
  REPAIR DELETE_EDGE e2
"""


def main(scale: int = 200) -> None:
    print(f"Building 'movies' workload (scale={scale}) ...")
    workload = build_workload("movies", scale=scale, error_rate=0.06, seed=5)

    rules = workload.rules.merged_with(parse_rules(CUSTOM_RULE, name="custom"),
                                       name="movie-rules+custom")
    print(f"Rule set: {rules.names()}")

    detection = detect_violations(workload.dirty, rules)
    print(f"\nViolations on the dirty catalogue: {len(detection)} "
          f"{detection.per_semantics()}")

    repaired, report = repair_copy(workload.dirty, rules)
    quality = repair_quality(workload.clean, workload.dirty, repaired,
                             workload.ground_truth)

    print("\n== repair report ==")
    print(report.describe())
    print("\n== quality ==")
    print(quality.describe())

    rows = []
    injected = workload.ground_truth.counts_by_kind()
    repaired_counts = report.repairs_per_semantics()
    detected = detection.per_semantics()
    for kind in ("incompleteness", "conflict", "redundancy"):
        rows.append({
            "error class": kind,
            "injected": injected.get(kind, 0),
            "violations detected": detected.get(kind, 0),
            "repairs applied": repaired_counts.get(kind, 0),
            "recall": quality.recall_by_kind.get(kind, float("nan")),
        })
    print("\n== per-error-class breakdown ==")
    print(format_table(rows))

    print(f"\nViolations remaining: {len(detect_violations(repaired, rules))}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
