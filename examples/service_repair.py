"""Multi-tenant repair service: two datasets, threads, and a live replica.

Run with::

    python examples/service_repair.py [kg_scale] [movie_scale]

Steps:

1. build two corrupted workloads (knowledge graph + movie catalog) and
   serve both from one :class:`~repro.service.GraphRepairService` — the kg
   tenant partitioned over a **warm worker pool** (``shards=2``), the movie
   tenant on a plain fast session;
2. subscribe a **replica graph** to the kg tenant's committed-delta
   changefeed (every committed transaction and repair mutation replays onto
   it as it publishes);
3. hammer both tenants **concurrently from worker threads** — staged
   transactions, commits, and repair calls interleaving freely under the
   sessions' locks;
4. settle everything with ``repair_all()`` and verify:
   the replica is **element-for-element identical** (ids included) to the
   served kg graph, both tenants reach a violation-free fixpoint, and the
   warm pool spawned nothing after warm-up;
5. show the telemetry surface: the whole run is traced and metered
   (``start_metrics_server`` turned telemetry on), so the example scrapes
   its own Prometheus ``/metrics`` endpoint, prints per-tenant repair
   latency percentiles from the registry, and dumps a Chrome trace of the
   repair spans to ``service_repair_trace.json`` (load it in
   ``chrome://tracing`` or https://ui.perfetto.dev — the fan-out shows
   every shard's repair nested under it).

This is the intended embedding shape for a long-running deployment: the
service owns the sessions, threads talk to tenants by name, and replication
consumes the changefeed — no caller ever touches engine objects.
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.request

from repro import build_workload, telemetry
from repro.graph.io import graph_to_dict
from repro.service import GraphRepairService


def exactly_equal(left, right) -> bool:
    """Element-for-element equality, ids included (stricter than
    ``structurally_equal``)."""
    a, b = graph_to_dict(left), graph_to_dict(right)
    a.pop("name", None)
    b.pop("name", None)
    return json.dumps(a, sort_keys=True, default=repr) \
        == json.dumps(b, sort_keys=True, default=repr)


def hammer(service: GraphRepairService, name: str, threads: int = 3,
           ops: int = 6) -> None:
    """N threads staging/committing edits and repairing one tenant."""
    errors: list[BaseException] = []

    def loop(thread_index: int) -> None:
        try:
            for op in range(ops):
                def edit(g, thread_index=thread_index, op=op):
                    node = g.add_node("Person",
                                      {"name": f"{name}-t{thread_index}-{op}"})
                    g.add_edge(node.id, g.node_ids()[thread_index], "knows")
                service.apply(name, edit)
                if (op + thread_index) % 3 == 0:
                    service.repair(name)
        except BaseException as exc:
            errors.append(exc)

    workers = [threading.Thread(target=loop, args=(index,))
               for index in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    if errors:
        raise errors[0]


def main(kg_scale: int = 200, movie_scale: int = 150) -> None:
    print(f"Building workloads (kg scale={kg_scale}, movies scale={movie_scale}) ...")
    kg = build_workload("kg", scale=kg_scale, error_rate=0.05, seed=0)
    movies = build_workload("movies", scale=movie_scale, error_rate=0.05, seed=0)

    with GraphRepairService() as service:
        print("\n== serving two tenants ==")
        kg_session = service.serve("kg", kg.dirty.copy(name="kg"), kg.rules,
                                   shards=2)
        service.serve("movies", movies.dirty.copy(name="movies"),
                      movies.rules)
        print(f"  tenants: {service.names()}  (kg partitioned over the warm pool)")

        # opt into observability: enables telemetry and serves Prometheus
        # text at /metrics (plus /healthz) on a stdlib daemon thread
        metrics = service.start_metrics_server()
        print(f"  metrics endpoint: {metrics.url}/metrics")

        # a replica rebuilt purely from the kg changefeed, live
        replica = kg.dirty.copy(name="kg-replica")
        service.subscribe("kg", lambda record: record.replay_onto(replica))

        print("\n== initial repair_all ==")
        for name, report in service.repair_all().items():
            print(f"  {name:<7} {report.repairs_applied} repairs, "
                  f"{report.remaining_violations} remaining")

        print("\n== concurrent traffic (3 threads per tenant) ==")
        tenant_threads = [
            threading.Thread(target=hammer, args=(service, name))
            for name in ("kg", "movies")
        ]
        for thread in tenant_threads:
            thread.start()
        for thread in tenant_threads:
            thread.join()
        reports = service.repair_all()
        for name, report in reports.items():
            print(f"  {name:<7} {report.repairs_applied} repairs total, "
                  f"{report.remaining_violations} remaining")

        print("\n== verification ==")
        feed = service.deltas("kg")
        commits = sum(1 for record in feed if record.source == "commit")
        print(f"  kg changefeed: {len(feed)} records "
              f"({commits} commits, {len(feed) - commits} repair deltas)")
        assert exactly_equal(replica, service.graph("kg")), \
            "replica must equal the served graph element for element"
        print("  replica == served kg graph: element-for-element identical")
        assert all(report.remaining_violations == 0
                   for report in reports.values())
        print("  both tenants at a violation-free fixpoint")
        stats = service.pool_stats
        print(f"  warm pool: {stats['spawns']} spawns, {stats['binds']} binds, "
              f"{stats['deltas_shipped']} deltas shipped, "
              f"{stats['repair_calls']} fan-outs "
              f"(spawns happen once; repairs after warm-up ship deltas)")

        print("\n== telemetry ==")
        snapshot = service.telemetry_snapshot()
        repair_seconds = snapshot.get("repro_repair_seconds")
        for tenant, backend in sorted(repair_seconds.histograms):
            count = repair_seconds.histograms[(tenant, backend)][2]
            p50 = repair_seconds.quantile(0.50, tenant=tenant,
                                          backend=backend)
            p99 = repair_seconds.quantile(0.99, tenant=tenant,
                                          backend=backend)
            print(f"  {tenant:<7} {count} repairs  "
                  f"p50={p50 * 1000:.2f}ms  p99={p99 * 1000:.2f}ms  "
                  f"({backend})")

        # the endpoint serves the same registry as Prometheus text
        with urllib.request.urlopen(f"{metrics.url}/metrics") as response:
            exposition = response.read().decode()
        sample = [line for line in exposition.splitlines()
                  if line.startswith(("repro_repair_seconds_count",
                                      "repro_pool_spawns_total",
                                      "repro_feed_sequence{"))]
        print("  scraped from /metrics:")
        for line in sample:
            print(f"    {line}")

        # every span of the run, one Chrome trace: coordinator lane plus
        # one lane per shard worker under each repair.fanout
        trace = telemetry.TELEMETRY.tracer.export_chrome()
        with open("service_repair_trace.json", "w", encoding="utf-8") as fh:
            json.dump(trace, fh)
        spans = sum(1 for event in trace["traceEvents"]
                    if event["ph"] == "X")
        print(f"  wrote service_repair_trace.json ({spans} spans — open in "
              "chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    arguments = [int(argument) for argument in sys.argv[1:3]]
    main(*arguments)
