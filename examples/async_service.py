"""Async ingestion front: two tenants, one flooding, fairness + backpressure.

Run with::

    python examples/async_service.py [kg_scale] [movie_scale]

Steps:

1. build two corrupted workloads (knowledge graph + movie catalog), serve
   both from one :class:`~repro.service.GraphRepairService`, and put an
   :class:`~repro.ingest.IngestFront` in front with its background repair
   scheduler running — the movie tenant on the default generous ``block``
   quota, the kg tenant on a deliberately **tiny reject-policy queue**
   (``max_pending=8``) so it can be flooded;
2. drive both tenants from one event loop through
   :class:`~repro.ingest.AsyncRepairService`: a handful of **well-behaved
   movie clients** that await every commit, and one **kg flooder** that
   fires hundreds of submissions concurrently;
3. watch admission control do its job: the flooder collects
   ``AdmissionError(reason="full")`` while every quiet-client edit commits
   and repairs — one tenant's flood never touches the other's traffic;
4. demonstrate **read-your-writes**: ``submit_and_wait`` returns only after
   the scheduler's repair pass covered the committed edit, after which the
   write is visible in the served graph;
5. quiesce the front (queues empty, every dirty tenant repaired) and print
   the scoreboard from **telemetry**: per-tenant submitted / rejected /
   coalesced counters and the commit→repaired latency p50/p99 for the
   well-behaved tenant, read from the metrics registry the scheduler
   populated.

This is the intended embedding shape for continuous ingestion: clients are
asyncio tasks, the front owns admission and scheduling, and repairs run
only where edits landed — see ``docs/INGEST.md``.
"""

from __future__ import annotations

import asyncio
import sys

from repro import build_workload, telemetry
from repro.exceptions import AdmissionError
from repro.ingest import (
    AsyncRepairService,
    IngestConfig,
    IngestFront,
    TenantQuota,
)
from repro.service import GraphRepairService

QUIET_CLIENTS = 6
QUIET_EDITS = 15
FLOOD_SUBMITS = 300


def first_node(service: GraphRepairService, name: str) -> str:
    return next(iter(service.sessions.get(name).graph.nodes())).id


def touch(node_id, key, value):
    return lambda graph: graph.update_node(node_id, {key: value})


async def quiet_client(aio: AsyncRepairService, node, client_id: int) -> int:
    """A well-behaved movie client: awaits every commit ack."""
    last = 0
    for i in range(QUIET_EDITS):
        last = await aio.submit("movies", touch(node, f"c{client_id}_k{i}", i))
        await asyncio.sleep(0)  # yield; keep the loop fair
    return last


async def flooder(aio: AsyncRepairService, node) -> tuple[int, int]:
    """The kg flooder: hundreds of concurrent submissions at a queue of 8."""

    async def one(i: int) -> bool:
        try:
            await aio.submit("kg", touch(node, f"f{i}", i))
            return True
        except AdmissionError as exc:
            assert exc.tenant == "kg" and exc.reason == "full"
            return False

    outcomes = await asyncio.gather(*(one(i) for i in range(FLOOD_SUBMITS)))
    return sum(outcomes), FLOOD_SUBMITS - sum(outcomes)


async def drive(service: GraphRepairService, front: IngestFront) -> None:
    aio = AsyncRepairService(front)
    kg_node = first_node(service, "kg")
    movie_node = first_node(service, "movies")

    print(f"Driving {QUIET_CLIENTS} quiet movie clients x {QUIET_EDITS} edits"
          f" against a {FLOOD_SUBMITS}-submission kg flood ...")
    results = await asyncio.gather(
        flooder(aio, kg_node),
        *(quiet_client(aio, movie_node, c) for c in range(QUIET_CLIENTS)))
    admitted, rejected = results[0]
    print(f"  flood:  {admitted} admitted, {rejected} rejected by "
          f"admission control (queue capacity 8, policy=reject)")
    print(f"  quiet:  all {QUIET_CLIENTS * QUIET_EDITS} edits committed, "
          f"0 rejections")

    seq = await aio.submit_and_wait("movies",
                                    touch(movie_node, "headline", "fixed"),
                                    timeout=30.0)
    graph = service.sessions.get("movies").graph
    print(f"  read-your-writes: seq {seq} repaired, headline="
          f"{graph.node(movie_node).properties['headline']!r}")

    await aio.quiesce(timeout=60.0)


def main(kg_scale: int = 120, movie_scale: int = 100) -> None:
    print(f"Building workloads (kg scale={kg_scale}, "
          f"movies scale={movie_scale}) ...")
    kg = build_workload("kg", scale=kg_scale, error_rate=0.05, seed=0)
    movies = build_workload("movies", scale=movie_scale, error_rate=0.05,
                            seed=0)

    with telemetry.collecting() as (registry, _tracer):
        with GraphRepairService() as service:
            service.serve("kg", kg.dirty.copy(name="kg"), kg.rules)
            service.serve("movies", movies.dirty.copy(name="movies"),
                          movies.rules)
            config = IngestConfig(tick_interval=0.01, max_repairs_per_tick=2)
            with IngestFront(service, config) as front:
                front.register("kg", TenantQuota(max_pending=8,
                                                 policy="reject",
                                                 sla_seconds=0.5))
                front.register("movies", TenantQuota(max_pending=2048,
                                                     sla_seconds=0.2))
                front.start()
                asyncio.run(drive(service, front))

                stats = front.stats()["tenants"]
                print("\nFront scoreboard:")
                for name in ("kg", "movies"):
                    s = stats[name]
                    print(f"  {name:<7} committed={s['committed']:<4} "
                          f"rejected={s['rejected']:<4} "
                          f"coalesced={s['coalesced']:<4} "
                          f"repairs={s['repairs']}")

        snapshot = registry.snapshot()
        hist = snapshot.get("repro_ingest_commit_to_repaired_seconds")
        p50 = hist.quantile(0.5, tenant="movies")
        p99 = hist.quantile(0.99, tenant="movies")
        rejected = snapshot.get("repro_ingest_rejected_total")
        print("\nTelemetry (movies tenant, flood running next door):")
        print(f"  commit->repaired p50 {p50:.4f}s / p99 {p99:.4f}s")
        print(f"  kg rejections counted: "
              f"{rejected.value(tenant='kg', reason='full'):.0f}")

    print("\nThe flood hurt only itself: admission control rejected its "
          "overflow at the queue,\nwhile the quiet tenant committed "
          "everything and kept its repair latency.")


if __name__ == "__main__":
    scales = [int(arg) for arg in sys.argv[1:3]]
    main(*scales)
