"""Sharded multi-process repair: a worker-count sweep on the knowledge graph.

Run with::

    python examples/parallel_repair.py [scale] [workers ...]

e.g. ``python examples/parallel_repair.py 800 1 2 4 8``.

Steps:

1. build a corrupted knowledge-graph workload;
2. repair it sequentially with the fast backend (the reference);
3. repair fresh copies with ``RepairConfig.sharded(workers=N)`` for each
   requested worker count, through the real ``multiprocessing`` spawn pool;
4. verify every sharded result is element-for-element identical to the
   sequential one, and print the sweep: wall-clock, shard/fan-out shape,
   how many repairs the workers contributed vs the coordinator.

Reading the numbers: sharding pays for partitioning, per-shard detection
over core+halo subgraphs, process startup, and delta merging.  It wins when
the graph is large enough that per-shard work dominates that overhead and
the machine has idle cores; on a small graph (or a single-core box) the
sequential fast backend stays ahead — see docs/PARALLEL.md for the model.
"""

from __future__ import annotations

import sys
import time

from repro import build_workload
from repro.api import RepairConfig, RepairSession
from repro.metrics import format_table


def main(scale: int = 400, worker_counts: list[int] | None = None) -> None:
    worker_counts = worker_counts or [1, 2, 4]
    print(f"Building 'kg' workload (scale={scale}) ...")
    workload = build_workload("kg", scale=scale, error_rate=0.05, seed=0)
    print(f"  dirty graph: {workload.dirty.num_nodes} nodes, "
          f"{workload.dirty.num_edges} edges")

    print("\n== sequential reference (fast backend) ==")
    reference = workload.dirty.copy(name="kg-sequential")
    started = time.perf_counter()
    with RepairSession(reference, workload.rules,
                       config=RepairConfig.fast()) as session:
        ref_report = session.repair()
    ref_seconds = time.perf_counter() - started
    print(f"  {ref_report.repairs_applied} repairs in {ref_seconds:.3f}s, "
          f"fixpoint={ref_report.reached_fixpoint}")

    rows = [{"workers": "sequential", "seconds": ref_seconds,
             "repairs": ref_report.repairs_applied, "shards": "-",
             "merged": "-", "deferred": "-", "identical": "-"}]

    print("\n== sharded sweep ==")
    for workers in worker_counts:
        repaired = workload.dirty.copy(name=f"kg-sharded-{workers}")
        config = RepairConfig.sharded(workers=workers)
        started = time.perf_counter()
        with RepairSession(repaired, workload.rules, config=config) as session:
            report = session.repair()
            fanout = session.backend.last_fanout
        seconds = time.perf_counter() - started
        identical = repaired.structurally_equal(reference)
        shape = (f"{fanout.shards} shards, halo x{fanout.halo_fraction:.2f}"
                 if fanout.ran else "fan-out skipped (degraded to fast drain)")
        print(f"  workers={workers}: {seconds:.3f}s, "
              f"{report.repairs_applied} repairs, {shape}, "
              f"identical-to-sequential={identical}")
        if fanout.conflicts:
            for conflict in fanout.conflicts:
                print(f"    conflict: {conflict}")
        rows.append({"workers": workers, "seconds": seconds,
                     "repairs": report.repairs_applied,
                     "shards": fanout.shards if fanout.ran else 0,
                     "merged": fanout.accepted if fanout.ran else 0,
                     "deferred": fanout.rejected if fanout.ran else 0,
                     "identical": identical})
        assert identical, "sharded repair diverged from the sequential result"

    print("\n== summary ==")
    print(format_table(rows, title="Sharded repair worker sweep (kg)"))


if __name__ == "__main__":
    scale_arg = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    workers_arg = [int(arg) for arg in sys.argv[2:]] or None
    main(scale_arg, workers_arg)
