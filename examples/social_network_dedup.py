"""Duplicate-account cleanup in a social network (redundancy semantics).

Run with::

    python examples/social_network_dedup.py [scale]

The example corrupts a synthetic social network with *redundancy errors only*
(duplicated user accounts and duplicated ``likes`` edges), repairs it with the
social rule library, and then uses the provenance log to answer the question a
trust & safety engineer would actually ask: *which accounts were merged, and
why?*
"""

from __future__ import annotations

import sys

from repro import RepairSession, SessionEvents, repair_quality
from repro.datasets import load_dataset
from repro.errors import ErrorInjector, InjectionConfig
from repro.metrics import format_table
from repro.repair import detect_violations
from repro.rules import Semantics


def main(scale: int = 200) -> None:
    print(f"Generating social network (scale={scale}) ...")
    dataset = load_dataset("social", scale=scale, seed=7)

    injector = ErrorInjector(dataset.error_profile,
                             InjectionConfig(error_rate=0.06,
                                             mix={"redundancy": 1.0}, seed=13))
    dirty, truth = injector.corrupt(dataset.clean)
    print(f"Injected {len(truth)} redundancy errors "
          f"({sum(1 for e in truth if 'duplicate-node' in e.details.get('strategy', ''))} "
          f"duplicated accounts).")

    detection = detect_violations(dirty, dataset.rules)
    print(f"Violations detected on the dirty graph: {len(detection)} "
          f"({detection.per_semantics()})")

    # Stream progress through the session's event hooks instead of waiting on
    # the terminal report: count merges as they are applied.
    live_merges = [0]

    def on_repair_applied(violation, _outcome) -> None:
        if violation.semantics is Semantics.REDUNDANCY:
            live_merges[0] += 1

    repaired = dirty.copy(name=f"{dirty.name}-repaired")
    with RepairSession(repaired, dataset.rules,
                       events=SessionEvents(
                           on_repair_applied=on_repair_applied)) as session:
        report = session.repair()
    print(f"\n[streamed] {live_merges[0]} redundancy repairs applied")
    print("\n== repair report ==")
    print(report.describe())

    quality = repair_quality(dataset.clean, dirty, repaired, truth)
    print("\n== quality against ground truth ==")
    print(quality.describe())

    merges = [action for action in report.log
              if action.semantics is Semantics.REDUNDANCY and
              "merge_nodes" in action.change_counts]
    rows = []
    for action in merges[:15]:
        kept = action.node_bindings.get("a", "?")
        merged = action.node_bindings.get("b", "?")
        username = (repaired.node(kept).get("username")
                    if repaired.has_node(kept) else "?")
        rows.append({"rule": action.rule_name, "kept": kept, "merged": merged,
                     "username": username, "changes": action.total_changes})
    print("\n== merged accounts (provenance) ==")
    print(format_table(rows, title=f"{len(merges)} account merges (first 15 shown)"))

    remaining = detect_violations(repaired, dataset.rules)
    print(f"\nViolations remaining after repair: {len(remaining)}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
