#!/usr/bin/env python
"""Fail on silent exception swallowing in ``src/``.

The observability contract (docs/OBSERVABILITY.md): a degradation path may
swallow an exception, but never silently — it must either route the event
through :mod:`repro.telemetry.log` (``warn_swallowed`` / ``log_event``) or
carry an explicit ``# silent-ok: <reason>`` marker on the handler.

This linter walks every Python file under the given roots (default:
``src/``) and flags each ``except`` handler that

* catches ``Exception``, ``BaseException``, or everything (bare except), and
* has a body consisting only of ``pass`` / ``...`` (no logging, no re-raise,
  no state change), and
* has no ``# silent-ok:`` marker on any source line of the handler.

Exit status 0 when clean, 1 with one ``path:line: message`` per finding —
CI runs it as the observability suite's lint step.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

MARKER = "# silent-ok:"

#: exception names whose silent swallowing is flagged (narrow handlers like
#: ``except KeyError: pass`` are a deliberate lookup idiom, not a black hole)
BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [node for node in handler.type.elts]
    else:
        names = [handler.type]
    for node in names:
        if isinstance(node, ast.Name) and node.id in BROAD:
            return True
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) \
                and isinstance(statement.value, ast.Constant) \
                and statement.value.value is Ellipsis:
            continue
        return False
    return True


def _has_marker(source_lines: list[str], handler: ast.ExceptHandler) -> bool:
    end = handler.body[-1].end_lineno or handler.body[-1].lineno
    for lineno in range(handler.lineno, end + 1):
        if MARKER in source_lines[lineno - 1]:
            return True
    return False


def lint_file(path: Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    lines = source.splitlines()
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_broad(node) and _is_silent(node) \
                and not _has_marker(lines, node):
            findings.append(
                f"{path}:{node.lineno}: silent broad except — log it via "
                "repro.telemetry.log.warn_swallowed() or mark the handler "
                f"with '{MARKER} <reason>'")
    return findings


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src")]
    findings: list[str] = []
    for root in roots:
        if root.is_file():
            findings.extend(lint_file(root))
            continue
        for path in sorted(root.rglob("*.py")):
            findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} silent except handler(s) found")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
