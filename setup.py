"""Legacy setup shim: lets `pip install -e .` work without the `wheel` package
(offline environment); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
